"""Async job manager: dedup, coalesce, execute with bounded concurrency.

The paper's platform answers one question per campaign; a *serving* system
faces many callers asking overlapping questions concurrently.  The
:class:`JobManager` is the piece that exploits determinism at submission
time:

1. **Cache check** — the request's fingerprint is looked up in the
   :class:`~repro.service.store.ResultStore`; a hit completes the job
   immediately, no simulation.
2. **Coalescing** — if an identical request is already *in flight*, the new
   submission attaches to the running flight instead of starting a second
   simulation: N concurrent identical submissions cost exactly one run, and
   every attached job receives the same result.
3. **Prefix extension** — a cache-cold request whose *physics* (everything
   but ``n_photons``) matches a stored smaller-budget entry does not start
   from photon zero: the flight primes the cached archive's reduction
   frontier into its reducer and simulates only the missing tasks.  The
   extended tally is bit-identical to a from-scratch run (task RNG streams
   are keyed by ``(seed, task_index)``), so it is stored and served exactly
   as a cold result would be.  Jobs report how they were served via
   ``Job.cache`` (``"exact"`` / ``"prefix"`` / ``"derived"`` / ``"miss"``).
4. **Derivation** — a request that differs from a cached entry *only in
   the perturbable optical coefficients* (per-layer μa/μs; same
   :func:`~repro.service.fingerprint.derivation_basis`, same budget) is
   answered by **reweighting** the cached parent's path records
   (:mod:`repro.perturb`) — zero photons simulated.  The derived tally is
   stored under the request's own fingerprint (``derived_from`` +
   perturbation delta in its provenance, ``derived=True`` in the index) so
   repeats are exact hits and it can itself seed further derivations —
   though simulation-born parents are always preferred, so scattering
   approximation error never compounds.  Any load/reweight failure falls
   through to a cold run: auto-derivation is an optimisation, never a
   correctness gate (the fail-closed path is
   :func:`repro.perturb.derive_from_archive`).  Cold extendable runs
   capture path records by default (``capture_paths=True`` on the
   manager) so their stored entries are eligible parents.
5. **Budget chaining** — a queued flight whose physics matches a smaller
   in-flight budget waits for that flight instead of racing it cold: when
   the base settles, the chained flight is released and (on success) finds
   the freshly stored entry as its extension base, so concurrent
   escalating budgets cost one full run plus deltas.  Flights whose
   *derivation basis* matches an in-flight equal-budget run chain the
   same way: the parent simulates once, the waiters each derive.
6. **Execution** — remaining work runs through the :func:`repro.api.run`
   facade on a bounded thread pool (each run may itself fan out over its
   own process/thread backend), in priority order (``high`` before
   ``normal`` before ``low``; FIFO within a class).

Job lifecycle: ``queued → running → done | failed | cancelled``.  A queued
job can be cancelled; cancelling every job of a flight cancels the flight
(if it has not started).  All state transitions are metered into
:mod:`repro.observe` — cache hits/misses, coalesced submissions, a
queue-depth gauge and a job-latency histogram.

Crash safety (optional)
-----------------------
Given a :class:`~repro.service.journal.JobJournal`, every transition is
journaled durably *before* it is acknowledged, each flight checkpoints its
tasks under the journal's ``checkpoints/<fingerprint>/`` directory (via
:mod:`repro.distributed.checkpoint`), and a restarted manager **replays**
the journal: queued jobs are re-enqueued, and jobs that were running when
the process died resume from their latest checkpoint — the recovered tally
is bit-identical to an uninterrupted run, because checkpoint resume is.
Cache hits are not journaled (they are terminal at submission; there is
nothing to recover).  Requests the wire cannot express (explicit
``config``, custom ``records``, ``sub_batch``, non-local mode) are
journaled without a request payload and marked failed on replay rather
than silently re-simulated wrong.

Resilience knobs: ``max_attempts``/``retry_backoff`` retry a flight whose
run raised (transient worker failures), and ``job_timeout`` fails a flight
that exceeds its wall budget (the abandoned run finishes on a daemon
thread and is discarded).
"""

from __future__ import annotations

import heapq
import itertools
import shutil
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..api import RunRequest
from ..core.tally import Tally
from ..distributed.checkpoint import CheckpointError, CheckpointManager
from ..observe import Telemetry
from ..perturb import PerturbationDelta, PerturbationError, derive_tally
from .fingerprint import (
    derivation_basis,
    perturbable_coefficients,
    physics_fingerprint,
    request_fingerprint,
)
from .journal import JobJournal, OpenJob
from .store import ResultStore

__all__ = ["Job", "JobManager", "JobState", "JobTimeout", "PRIORITIES"]

#: Priority classes, lower number dispatches first.
PRIORITIES = {"high": 0, "normal": 1, "low": 2}
_PRIORITY_NAMES = {v: k for k, v in PRIORITIES.items()}


class JobTimeout(RuntimeError):
    """A flight exceeded the manager's ``job_timeout`` wall budget."""


class JobState:
    """The five job states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One submission: identity, state and (eventually) a result."""

    id: str
    fingerprint: str
    request: RunRequest | None
    state: str = JobState.QUEUED
    priority: int = PRIORITIES["normal"]
    cache_hit: bool = False
    coalesced: bool = False
    recovered: bool = False
    #: How the cache served this job: ``"exact"`` (stored result returned
    #: as-is), ``"prefix"`` (a smaller-budget entry was extended by a delta
    #: run), ``"derived"`` (reweighted from a same-basis cached parent,
    #: zero photons simulated), or ``"miss"`` (simulated from scratch).
    cache: str = "miss"
    #: Fingerprint of the cached entry a prefix extension or derivation
    #: started from.
    base_fingerprint: str | None = None
    #: Photons actually simulated by the delta run of a prefix extension.
    delta_photons: int | None = None
    #: The perturbation delta of a ``"derived"`` job
    #: (:meth:`~repro.perturb.PerturbationDelta.as_dict` form).
    perturbation: dict | None = None
    error: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    tally: Tally | None = None
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> Tally:
        """The job's tally, blocking until it settles.

        Raises ``TimeoutError`` if the job does not settle in time and
        ``RuntimeError`` if it failed or was cancelled.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} did not settle in {timeout}s")
        if self.state != JobState.DONE:
            raise RuntimeError(f"job {self.id} {self.state}: {self.error or ''}")
        assert self.tally is not None
        return self.tally

    def as_dict(self) -> dict:
        """JSON-serialisable view (the HTTP status payload)."""
        out = {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "priority": _PRIORITY_NAMES.get(self.priority, str(self.priority)),
            "cache_hit": self.cache_hit,
            "cache": self.cache,
            "coalesced": self.coalesced,
            "recovered": self.recovered,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.base_fingerprint is not None:
            out["base_fingerprint"] = self.base_fingerprint
            if self.perturbation is not None:
                out["perturbation"] = self.perturbation
            else:
                out["delta_photons"] = self.delta_photons
        return out

    # -- transitions (called by the manager, under its lock) -----------------
    def _complete(self, tally: Tally, *, cache_hit: bool = False) -> None:
        self.tally = tally
        self.cache_hit = cache_hit
        if cache_hit:
            self.cache = "exact"
        self.state = JobState.DONE
        self.finished = time.time()
        self._done.set()

    def _fail(self, error: str) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished = time.time()
        self._done.set()

    def _cancel(self) -> None:
        self.state = JobState.CANCELLED
        self.finished = time.time()
        self._done.set()


class _Flight:
    """One in-flight simulation and the jobs riding on it."""

    def __init__(
        self,
        fingerprint: str,
        request: RunRequest,
        priority: int = 1,
        physics: str | None = None,
        basis: str | None = None,
    ) -> None:
        self.fingerprint = fingerprint
        self.request = request
        self.priority = priority
        #: Physics fingerprint (budget-independent); ``None`` when the
        #: request is not eligible for prefix extension or chaining.
        self.physics = physics
        #: Derivation basis (coefficient-independent); ``None`` when the
        #: request is not eligible for perturbation derivation.
        self.basis = basis
        self.jobs: list[Job] = []
        #: Flights with the same physics and a larger budget — or the same
        #: derivation basis and an equal budget — parked until this flight
        #: settles (see ``JobManager._release_chained``).
        self.chained: list["_Flight"] = []
        self.started = False
        self.started_at: float | None = None
        self.cancelled = False


@dataclass
class _Plan:
    """How ``_execute`` should serve a flight (decided at execute time)."""

    run_request: RunRequest
    #: Non-None: the flight settles without running (exact or derived).
    tally: Tally | None = None
    cache: str = "miss"  # "exact" | "prefix" | "derived" | "miss"
    #: Prefix-extension base or derivation parent.
    base_fingerprint: str | None = None
    base_n_photons: int | None = None
    delta_photons: int | None = None
    #: ``PerturbationDelta.as_dict()`` of a derived plan.
    perturbation: dict | None = None
    #: Whether the derivation parent was itself derived (provenance detail).
    parent_derived: bool = False


class JobManager:
    """Submit/track/cancel simulation jobs with caching and coalescing.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` answering repeats from disk.
    max_workers:
        Simulations running concurrently.
    journal:
        A :class:`~repro.service.journal.JobJournal` (or its directory
        path) making job state durable; the constructor replays it, so
        jobs interrupted by a crash are re-enqueued/resumed immediately.
    max_attempts / retry_backoff:
        A flight whose run raises is retried up to ``max_attempts`` total
        attempts, sleeping ``retry_backoff * 2**(attempt-1)`` seconds (cap
        30 s) in between — transient worker failures don't fail jobs.
    job_timeout:
        Wall-clock budget per flight attempt; exceeding it fails the job
        with :class:`JobTimeout` (no retry — a timeout is not transient).
    capture_paths:
        Capture per-detected-photon path records on cold extendable runs
        (the default), making their stored entries eligible perturbation
        parents.  ``False`` disables capture — and with it derivation
        chaining — for memory/storage-constrained deployments; explicit
        ``RunRequest.capture_paths`` is honoured either way.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        max_workers: int = 2,
        telemetry: Telemetry | None = None,
        runner=None,
        journal: JobJournal | str | Path | None = None,
        max_attempts: int = 1,
        retry_backoff: float = 0.5,
        job_timeout: float | None = None,
        capture_paths: bool = True,
    ) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {max_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0 or None, got {job_timeout}")
        self.store = store
        #: Always present: metrics accumulate even with a Null event sink,
        #: so ``/v1/metrics`` works out of the box.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if store is not None and store.telemetry is None:
            store.telemetry = self.telemetry
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self.journal = journal
        if journal is not None and journal.telemetry is None:
            journal.telemetry = self.telemetry
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.job_timeout = job_timeout
        self.capture_paths = capture_paths
        self._runner = runner if runner is not None else self._default_runner
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._flights: dict[str, _Flight] = {}
        self._pending: list[tuple[int, int, _Flight]] = []  # priority heap
        self._seq = itertools.count()
        self._idle = threading.Condition(self._lock)  # notified per settled flight
        self._closed = False
        self._draining = False
        if self.journal is not None:
            self._recover()

    # -------------------------------------------------------------- lifecycle
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running flights.

        Idempotent: the second and later calls return immediately.  With
        ``wait=True`` the worker threads are joined, so tests can never
        leak a ``repro-service`` thread into the next case.  Queued jobs
        are cancelled locally but — when a journal is attached — their
        ``submitted`` records remain, so a restarted manager replays them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        with self._lock:
            flights = list(self._flights.values())
            self._flights.clear()
            self._pending.clear()
            self._idle.notify_all()
        for flight in flights:
            if not flight.started:
                for job in flight.jobs:
                    job._cancel()
        if self.journal is not None:
            self.journal.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown, phase one: stop admitting, let flights finish.

        Returns ``True`` when every flight settled within ``timeout``.
        Flights still running when the timeout expires keep their journal
        ``started`` records and their checkpoint directories, so the next
        process resumes them from the latest checkpoint rather than from
        photon zero.  Call :meth:`close` afterwards either way.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            while self._flights or self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def submit(
        self,
        request: RunRequest,
        *,
        priority: str | int = "normal",
        client: str | None = None,
    ) -> Job:
        """Register a run request; returns immediately with a :class:`Job`.

        The job may already be ``done`` (cache hit), attached to an
        in-flight identical request (``coalesced``), or queued for
        execution in priority order.  With a journal attached, the job is
        durable before this method returns.
        """
        rank = self._resolve_priority(priority)
        fingerprint = request_fingerprint(request)
        job = Job(
            id=uuid.uuid4().hex,
            fingerprint=fingerprint,
            request=request,
            priority=rank,
        )
        with self._lock:
            if self._closed or self._draining:
                raise RuntimeError(
                    "JobManager is draining" if self._draining else "JobManager is closed"
                )
            self._jobs[job.id] = job
        self.telemetry.count("service.jobs.submitted")

        if self.store is not None:
            tally = self.store.get(fingerprint)
            if tally is not None:
                # Terminal at submission: nothing to recover, not journaled.
                job._complete(tally, cache_hit=True)
                self.telemetry.count("service.cache.hits")
                return job
        self.telemetry.count("service.cache.misses")

        self._journal_record(
            "submitted",
            job.id,
            fingerprint=fingerprint,
            request=self._request_payload(request),
            priority=rank,
            client=client,
        )
        self._enqueue(job, request)
        return job

    def _enqueue(self, job: Job, request: RunRequest) -> None:
        """Attach ``job`` to an existing flight or open (and queue) a new one."""
        extendable = self._extendable(request)
        physics = physics_fingerprint(request) if extendable else None
        basis = derivation_basis(request) if extendable else None
        with self._lock:
            flight = self._flights.get(job.fingerprint)
            if flight is not None:
                job.coalesced = True
                job.state = JobState.RUNNING if flight.started else JobState.QUEUED
                job.started = flight.started_at
                flight.jobs.append(job)
                self.telemetry.count("service.coalesced")
                self._update_queue_depth()
                return
            flight = _Flight(
                job.fingerprint,
                request,
                priority=job.priority,
                physics=physics,
                basis=basis,
            )
            flight.jobs.append(job)
            self._flights[job.fingerprint] = flight
            base = self._chain_base(flight)
            if base is not None:
                # Same physics, smaller budget already in flight: wait for
                # it instead of racing it cold — when it settles (and its
                # result is stored) this flight is released and extends it.
                base.chained.append(flight)
                self.telemetry.count("service.chained")
                self._update_queue_depth()
                return
            heapq.heappush(self._pending, (flight.priority, next(self._seq), flight))
            self._update_queue_depth()
        # One pool slot per pending flight; each slot runs the *highest
        # priority* flight pending at the moment it frees up.
        self._executor.submit(self._run_next)

    def _extendable(self, request: RunRequest) -> bool:
        """Can this request participate in prefix extension / chaining?"""
        return (
            self.store is not None
            and request.mode == "local"
            and request.task_range is None
            and request.frontier is None
        )

    def _chain_base(self, flight: _Flight) -> "_Flight | None":
        """The best in-flight base for ``flight`` to wait on (lock held).

        Prefers the largest strictly-smaller budget with the same physics
        (budget chain, the released flight prefix-extends it); otherwise,
        when cold runs capture path records, any equal-budget flight with
        the same derivation basis (derivation chain, the released flight
        reweights it).  ``None`` when nothing qualifies — the flight then
        runs independently.
        """
        if flight.physics is None:
            return None
        best = None
        peer = None
        for other in self._flights.values():
            if other is flight or other.cancelled:
                continue
            if (
                other.physics == flight.physics
                and other.request.n_photons < flight.request.n_photons
            ):
                if best is None or other.request.n_photons > best.request.n_photons:
                    best = other
            elif (
                peer is None
                and self.capture_paths
                and flight.basis is not None
                and other.basis == flight.basis
                and other.request.n_photons == flight.request.n_photons
            ):
                peer = other
        return best if best is not None else peer

    def _release_chained(self, flight: _Flight) -> None:
        """Queue the flights parked behind ``flight`` (call without lock)."""
        with self._lock:
            chained, flight.chained = flight.chained, []
            if self._closed:
                return  # close() cancels their riders via its flight sweep
            for waiter in chained:
                heapq.heappush(
                    self._pending, (waiter.priority, next(self._seq), waiter)
                )
        for _ in chained:
            try:
                self._executor.submit(self._run_next)
            except RuntimeError:  # raced close(): riders cancelled there
                return

    def _resolve_priority(self, priority: str | int) -> int:
        if isinstance(priority, int):
            return priority
        try:
            return PRIORITIES[priority]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {sorted(PRIORITIES)}"
            ) from None

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queue_depth(self) -> int:
        """Jobs not yet settled (queued + running, riders included)."""
        with self._lock:
            return sum(len(f.jobs) for f in self._flights.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; True if it was still cancellable.

        A coalesced job detaches from its flight without disturbing the
        other riders.  When the last rider of a not-yet-started flight
        cancels, the flight itself is cancelled.
        """
        released: _Flight | None = None
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in JobState.TERMINAL:
                return False
            flight = self._flights.get(job.fingerprint)
            if flight is not None and job in flight.jobs:
                flight.jobs.remove(job)
                if not flight.jobs:
                    flight.cancelled = True
                    if not flight.started:
                        self._flights.pop(job.fingerprint, None)
                        self._idle.notify_all()
                        released = flight
            job._cancel()
            self._update_queue_depth()
        if released is not None:
            self._release_chained(released)
        self._journal_record("cancelled", job_id)
        self.telemetry.count("service.jobs.cancelled")
        return True

    # --------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Replay the journal: re-enqueue open jobs, resume interrupted ones."""
        open_jobs = self.journal.replay()
        if not open_jobs:
            self._journal_compact()
            return
        from .http import request_from_json  # lazy: http imports this module

        for entry in open_jobs:
            request = None
            error = None
            if entry.request is None:
                error = "not recoverable: request not journalable"
            else:
                try:
                    request = request_from_json(entry.request)
                except ValueError as exc:
                    error = f"not recoverable: {exc}"
            if request is not None and request_fingerprint(request) != entry.fingerprint:
                # Canonicalization rules moved underneath the journal
                # (version bump): refuse rather than file the result under
                # a stale address.
                request, error = None, "not recoverable: fingerprint drift"
            job = Job(
                id=entry.job_id,
                fingerprint=entry.fingerprint,
                request=request,
                priority=entry.priority,
                recovered=True,
                created=entry.submitted_ts or time.time(),
            )
            with self._lock:
                self._jobs[job.id] = job
            if request is None:
                job._fail(error)
                self.telemetry.count("service.journal.unrecoverable")
                continue
            if self.store is not None:
                tally = self.store.get(entry.fingerprint)
                if tally is not None:
                    # The crash lost the acknowledgement, not the result.
                    job._complete(tally, cache_hit=True)
                    self.telemetry.count("service.recovered")
                    continue
            self._enqueue(job, request)
            self.telemetry.count("service.recovered")
        self._journal_compact()

    def _journal_record(self, event: str, job_id: str, **fields) -> None:
        if self.journal is not None:
            self.journal.record(event, job_id, **fields)

    def _journal_compact(self) -> None:
        """Rewrite the journal to the currently open jobs (atomic)."""
        if self.journal is None:
            return
        with self._lock:
            open_jobs = [
                OpenJob(
                    job_id=job.id,
                    fingerprint=job.fingerprint,
                    request=self._request_payload(job.request),
                    priority=job.priority,
                    submitted_ts=job.created,
                    was_running=flight.started,
                )
                for flight in self._flights.values()
                for job in flight.jobs
            ]
        self.journal.compact(open_jobs)

    @staticmethod
    def _request_payload(request: RunRequest | None) -> dict | None:
        if request is None:
            return None
        from .http import request_to_json  # lazy: http imports this module

        return request_to_json(request)

    # ------------------------------------------------------------- execution
    @staticmethod
    def _default_runner(request: RunRequest):
        # Returns the full RunReport so the captured frontier travels with
        # the tally into the store.  Custom runners may still return a bare
        # Tally; _execute accepts either (such results just aren't
        # budget-extendable).
        from .. import api

        return api.run(request)

    def _run_next(self) -> None:
        """Pool entry point: execute the highest-priority pending flight."""
        while True:
            with self._lock:
                if not self._pending:
                    return
                _, _, flight = heapq.heappop(self._pending)
            if flight.cancelled:
                with self._lock:
                    self._flights.pop(flight.fingerprint, None)
                    self._update_queue_depth()
                    self._idle.notify_all()
                self._release_chained(flight)
                continue  # this slot serves the next pending flight, if any
            self._execute(flight)
            return

    def _checkpointed(self, request: RunRequest, fingerprint: str) -> RunRequest:
        """Attach the flight's durable checkpoint directory (journal mode)."""
        if self.journal is None or request.checkpoint is not None:
            return request
        manager = CheckpointManager(self.journal.checkpoint_dir(fingerprint))
        return replace(request, checkpoint=manager, resume=manager.exists)

    def _run_once(self, request: RunRequest):
        """One runner attempt, bounded by ``job_timeout`` when set.

        Returns whatever the runner returns (a RunReport or a bare Tally).
        """
        if self.job_timeout is None:
            return self._runner(request)
        box: dict = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["result"] = self._runner(request)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(target=target, name="repro-job", daemon=True)
        thread.start()
        if not done.wait(self.job_timeout):
            # The abandoned attempt finishes on its daemon thread and is
            # discarded; with a journal its checkpoints survive for resume.
            self.telemetry.count("service.jobs.timeout")
            raise JobTimeout(f"flight exceeded job_timeout={self.job_timeout}s")
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _plan(self, flight: _Flight) -> _Plan:
        """Decide how to serve a flight *at execute time*.

        Planning is deferred to execution (not submission) so a flight
        released from a budget or derivation chain sees the entry its base
        just stored.  Resolution order: **exact → prefix → derivation →
        miss**:

        * ``cache="exact"``: the store answered the exact address
          meanwhile (e.g. another process shares the directory) — settle
          without running.
        * ``cache="prefix"``: ``run_request`` carries the cached frontier
          and simulates only the delta tasks.
        * ``cache="derived"``: ``tally`` was reweighted from a same-basis
          cached parent — settle without running.
        * ``cache="miss"``: a cold run; extendable requests still get
          ``capture_frontier=True`` (and, per the manager's
          ``capture_paths`` knob, path capture) so the stored entry can
          seed future extensions and derivations.
        """
        if flight.physics is None:
            return _Plan(run_request=flight.request)
        exact = self.store.get(flight.fingerprint)
        if exact is not None:
            return _Plan(run_request=flight.request, tally=exact, cache="exact")
        hit = self.store.best_prefix(flight.physics, flight.request.n_photons)
        if hit is not None:
            fp, cached_photons, _frontier_tasks = hit
            frontier = self.store.get_frontier(fp)
            covered = frontier.prefix_tasks if frontier is not None else 0
            if covered > 0:
                task_size = flight.request.resolved_task_size()
                delta = flight.request.n_photons - covered * task_size
                run_request = replace(
                    flight.request,
                    frontier=frontier,
                    capture_frontier=True,
                    # The primed frontier spans carry no path records, so
                    # the merged tally cannot either (all-or-nothing):
                    # skip the capture cost on the delta tasks.
                    capture_paths=False,
                )
                self.telemetry.count("service.prefix.hits")
                self.telemetry.count("service.prefix.delta_photons", delta)
                self.telemetry.count(
                    "service.prefix.photons_saved", covered * task_size
                )
                return _Plan(
                    run_request=run_request,
                    cache="prefix",
                    base_fingerprint=fp,
                    base_n_photons=cached_photons,
                    delta_photons=delta,
                )
        derived = self._plan_derivation(flight)
        if derived is not None:
            return derived
        cold = replace(flight.request, capture_frontier=True)
        if self.capture_paths and not cold.capture_paths:
            cold = replace(cold, capture_paths=True)
        return _Plan(run_request=cold)

    def _plan_derivation(self, flight: _Flight) -> "_Plan | None":
        """A reweighting plan from a same-basis cached parent, or ``None``.

        Every failure mode — parent evicted between index lookup and load,
        records missing, foreign coefficients — returns ``None`` and the
        flight falls through to a cold run: auto-derivation is an
        optimisation, never a correctness gate.
        """
        if flight.basis is None:
            return None
        hit = self.store.best_derivation(
            flight.basis, flight.request.n_photons, exclude=flight.fingerprint
        )
        if hit is None:
            return None
        parent_fp, parent_coeffs, parent_derived = hit
        try:
            delta = PerturbationDelta.between(
                parent_coeffs, perturbable_coefficients(flight.request)
            )
        except (KeyError, TypeError, ValueError):
            return None  # degenerate/foreign coefficients: run cold
        parent = self.store.get(parent_fp)
        if parent is None:
            return None
        parent.paths = self.store.get_paths(parent_fp)
        try:
            tally = derive_tally(parent, delta, mu_s=parent_coeffs.get("mu_s"))
        except PerturbationError:
            return None
        self.telemetry.count("service.derivation.hits")
        self.telemetry.count(
            "service.derivation.photons_saved", flight.request.n_photons
        )
        return _Plan(
            run_request=flight.request,
            tally=tally,
            cache="derived",
            base_fingerprint=parent_fp,
            perturbation=delta.as_dict(),
            parent_derived=parent_derived,
        )

    def _execute(self, flight: _Flight) -> None:
        with self._lock:
            cancelled = flight.cancelled
            if cancelled:
                self._flights.pop(flight.fingerprint, None)
                self._update_queue_depth()
                self._idle.notify_all()
            else:
                flight.started = True
                flight.started_at = now = time.time()
                job_ids = [job.id for job in flight.jobs]
                for job in flight.jobs:
                    job.state = JobState.RUNNING
                    job.started = now
        if cancelled:
            self._release_chained(flight)
            return
        t0 = time.perf_counter()
        plan = self._plan(flight)
        run_request, tally = plan.run_request, plan.tally
        error: str | None = None
        exact_hit = plan.cache == "exact"
        if exact_hit:
            # Exact hit at execute time: serve from the store, no run.
            self.telemetry.count("service.cache.hits")
        elif plan.cache == "derived":
            # Reweighted from a cached parent: no run.  The derived entry
            # is stored under this flight's own fingerprint so repeats are
            # exact hits; a store failure only costs the caching, never
            # the (already computed) result.
            for job_id in job_ids:
                self._journal_record(
                    "started",
                    job_id,
                    cache="derived",
                    base_fingerprint=plan.base_fingerprint,
                    perturbation=plan.perturbation,
                )
            if self.store is not None:
                provenance = flight.request.provenance()
                provenance["derived_from"] = {
                    "parent_fingerprint": plan.base_fingerprint,
                    "perturbation": plan.perturbation,
                    "parent_derived": plan.parent_derived,
                }
                try:
                    self.store.put(
                        flight.fingerprint,
                        tally,
                        provenance=provenance,
                        physics=flight.physics,
                        n_photons=flight.request.n_photons,
                        basis=flight.basis,
                        coefficients=perturbable_coefficients(flight.request),
                        derived=True,
                    )
                except Exception:  # noqa: BLE001 - caching is best-effort here
                    self.telemetry.count("service.derivation.store_failures")
        else:
            derivation: dict = {}
            if plan.base_fingerprint is not None:
                derivation = {
                    "cache": "prefix",
                    "base_fingerprint": plan.base_fingerprint,
                    "base_n_photons": plan.base_n_photons,
                    "delta_photons": plan.delta_photons,
                }
            for job_id in job_ids:
                self._journal_record("started", job_id, **derivation)
            wiped_stale_checkpoint = False
            attempt = 0
            while True:
                attempt += 1
                try:
                    request = self._checkpointed(run_request, flight.fingerprint)
                    if request.telemetry is None:
                        # Attach the service telemetry so kernel/dispatch
                        # spans and photon counters land in the same registry
                        # as the service metrics (a request carrying its own
                        # telemetry keeps it).
                        request = replace(request, telemetry=self.telemetry)
                    out = self._run_once(request)
                    tally = out.tally if hasattr(out, "tally") else out
                    frontier_out = getattr(out, "frontier", None)
                    error = None
                    if self.store is not None:
                        provenance = flight.request.provenance()
                        if plan.base_fingerprint is not None:
                            provenance["derived_from"] = {
                                "base_fingerprint": plan.base_fingerprint,
                                "base_n_photons": plan.base_n_photons,
                                "delta_photons": plan.delta_photons,
                            }
                        self.store.put(
                            flight.fingerprint,
                            tally,
                            provenance=provenance,
                            physics=flight.physics,
                            n_photons=(
                                flight.request.n_photons
                                if flight.physics is not None
                                else None
                            ),
                            frontier=frontier_out,
                            basis=flight.basis,
                            coefficients=(
                                perturbable_coefficients(flight.request)
                                if flight.basis is not None
                                else None
                            ),
                        )
                    break
                except CheckpointError:
                    # The durable checkpoint belongs to a different
                    # decomposition (e.g. an execution knob outside the
                    # fingerprint changed, or the extension base moved since
                    # the crash).  Wipe it once and restart the flight.
                    if self.journal is None or wiped_stale_checkpoint:
                        error = "CheckpointError: stale checkpoint"
                        break
                    wiped_stale_checkpoint = True
                    attempt -= 1
                    self.telemetry.count("service.journal.stale_checkpoints")
                    shutil.rmtree(
                        self.journal.checkpoint_dir(flight.fingerprint),
                        ignore_errors=True,
                    )
                except JobTimeout as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    break  # a wall-budget overrun is not transient: no retry
                except Exception as exc:  # noqa: BLE001 - failures settle the job
                    error = f"{type(exc).__name__}: {exc}"
                    with self._lock:
                        aborting = self._closed or flight.cancelled
                    if attempt >= self.max_attempts or aborting:
                        break
                    self.telemetry.count("service.jobs.retried")
                    time.sleep(min(self.retry_backoff * 2 ** (attempt - 1), 30.0))
        with self._lock:
            self._flights.pop(flight.fingerprint, None)
            riders = list(flight.jobs)
            self._update_queue_depth()
            self._idle.notify_all()
        for job in riders:
            if job.state in JobState.TERMINAL:
                continue
            # Journal the terminal event *before* releasing the waiter: an
            # acknowledgement a client can observe must already be durable.
            # The finally keeps a journal I/O failure from stranding waiters.
            if error is None and tally is not None:
                if plan.base_fingerprint is not None:
                    job.cache = plan.cache
                    job.base_fingerprint = plan.base_fingerprint
                    job.delta_photons = plan.delta_photons
                    job.perturbation = plan.perturbation
                try:
                    self._journal_record("done", job.id)
                finally:
                    job._complete(tally, cache_hit=exact_hit)
            else:
                try:
                    self._journal_record("failed", job.id)
                finally:
                    job._fail(error or "no result")
        self._release_chained(flight)
        if error is None and self.journal is not None:
            # The run is durable in the store; its checkpoints are spent.
            shutil.rmtree(
                self.journal.checkpoint_dir(flight.fingerprint), ignore_errors=True
            )
        if (
            self.journal is not None
            and self.journal.size() > self.journal.max_bytes
        ):
            self._journal_compact()
        self.telemetry.observe("service.job.seconds", time.perf_counter() - t0)
        if error is not None:
            self.telemetry.count("service.jobs.failed")

    def _update_queue_depth(self) -> None:
        # Callers hold self._lock; gauge = jobs not yet settled.
        depth = sum(len(f.jobs) for f in self._flights.values())
        self.telemetry.registry.gauge("service.queue.depth").set(depth)
