"""Admission control for the serving subsystem.

The paper's platform was sized for one campaign; a public-facing service
must survive *arbitrary* offered load on fixed hardware, the regime Yu et
al. (arXiv 1711.03244) scale photon transport under.  The
:class:`AdmissionController` decides — before a request touches the job
manager — whether to accept work, and answers rejected callers with
explicit backpressure instead of an unbounded queue:

* **Photon-budget-aware cost.**  The natural unit of service cost is the
  photon, not the request: ``estimate_cost`` is the request's photon
  budget, so one 10⁸-photon submission weighs as much as a thousand
  10⁵-photon ones.
* **Per-client token buckets.**  Each client refills at
  ``rate_photons_per_s`` up to ``burst_photons``; a request is admitted
  only when its cost fits the bucket (HTTP 429 + ``Retry-After``
  otherwise, with the exact refill time).
* **Per-client in-flight quota.**  ``max_inflight_per_client`` bounds the
  number of unsettled jobs a single caller may hold (429).
* **Bounded queue.**  Admission is refused outright when the manager's
  queue is at ``max_queue`` (HTTP 503 — the *service* is saturated, not
  the caller misbehaving).
* **Per-request ceiling.**  ``max_photons_per_request`` rejects budgets no
  single admission could ever cover (429, no ``Retry-After`` — retrying
  the same request cannot succeed).

Decisions and rejection reasons are metered as ``service.admitted`` and
``service.rejected{reason=...}``.  The controller is deliberately
stateless about *jobs* except for lazily-pruned in-flight tracking, so it
never needs completion callbacks from the manager.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..observe import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import RunRequest
    from .jobs import Job

__all__ = ["AdmissionController", "AdmissionDecision", "estimate_cost"]


def estimate_cost(request: "RunRequest") -> float:
    """Service cost of a request, in photons (the unit all budgets share)."""
    return float(request.n_photons)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check (maps directly onto the HTTP reply)."""

    admitted: bool
    status: int = 202
    reason: str | None = None
    retry_after: float | None = None

    @staticmethod
    def ok() -> "AdmissionDecision":
        return AdmissionDecision(admitted=True)


class _Bucket:
    """One client's token bucket, in photon units."""

    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class AdmissionController:
    """Decide, per request, between admit / 429 (throttle) / 503 (saturated).

    Parameters
    ----------
    max_queue:
        Unsettled jobs the manager may hold before new work is refused
        with 503 (``None`` disables the bound — not recommended).
    rate_photons_per_s / burst_photons:
        Per-client token bucket: refill rate and capacity, in photons.
        ``burst_photons`` defaults to ten seconds of refill.  ``None``
        rate disables rate limiting.
    max_inflight_per_client:
        Unsettled jobs one client may hold concurrently (``None``
        disables).
    max_photons_per_request:
        Absolute per-request budget ceiling (``None`` disables).
    saturation_retry_after:
        ``Retry-After`` hint (seconds) attached to 503 responses.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        *,
        max_queue: int | None = 64,
        rate_photons_per_s: float | None = None,
        burst_photons: float | None = None,
        max_inflight_per_client: int | None = None,
        max_photons_per_request: float | None = None,
        saturation_retry_after: float = 2.0,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        if rate_photons_per_s is not None and rate_photons_per_s <= 0:
            raise ValueError(
                f"rate_photons_per_s must be > 0 or None, got {rate_photons_per_s}"
            )
        if burst_photons is not None and burst_photons <= 0:
            raise ValueError(
                f"burst_photons must be > 0 or None, got {burst_photons}"
            )
        if max_inflight_per_client is not None and max_inflight_per_client < 1:
            raise ValueError(
                "max_inflight_per_client must be >= 1 or None, "
                f"got {max_inflight_per_client}"
            )
        if max_photons_per_request is not None and max_photons_per_request <= 0:
            raise ValueError(
                "max_photons_per_request must be > 0 or None, "
                f"got {max_photons_per_request}"
            )
        if saturation_retry_after < 0:
            raise ValueError(
                f"saturation_retry_after must be >= 0, got {saturation_retry_after}"
            )
        self.max_queue = max_queue
        self.rate = rate_photons_per_s
        self.burst = (
            burst_photons
            if burst_photons is not None
            else (rate_photons_per_s * 10.0 if rate_photons_per_s else None)
        )
        self.max_inflight = max_inflight_per_client
        self.max_cost = max_photons_per_request
        self.saturation_retry_after = saturation_retry_after
        self.telemetry = telemetry
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self._inflight: dict[str, list] = {}  # client -> [Job, ...], lazily pruned

    # -------------------------------------------------------------- decision
    def admit(
        self, client: str, request: "RunRequest", *, queue_depth: int = 0
    ) -> AdmissionDecision:
        """One admission check; deducts the request's cost when admitted."""
        cost = estimate_cost(request)
        if self.max_cost is not None and cost > self.max_cost:
            # Retrying an over-ceiling request can never succeed: no hint.
            return self._reject(429, "over_budget", None)
        if self.max_queue is not None and queue_depth >= self.max_queue:
            return self._reject(503, "saturated", self.saturation_retry_after)
        with self._lock:
            if self.max_inflight is not None:
                from .jobs import JobState  # local import: jobs imports us back

                jobs = self._inflight.setdefault(client, [])
                jobs[:] = [j for j in jobs if j.state not in JobState.TERMINAL]
                if len(jobs) >= self.max_inflight:
                    return self._reject(429, "inflight", 1.0)
            if self.rate is not None:
                now = self._clock()
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = self._buckets[client] = _Bucket(self.burst, now)
                bucket.tokens = min(
                    self.burst, bucket.tokens + (now - bucket.updated) * self.rate
                )
                bucket.updated = now
                # A single request larger than the whole bucket drains it
                # fully rather than being unservable forever.
                charge = min(cost, self.burst)
                if bucket.tokens < charge:
                    wait = (charge - bucket.tokens) / self.rate
                    return self._reject(429, "rate", wait)
                bucket.tokens -= charge
        self._count("service.admitted")
        return AdmissionDecision.ok()

    def track(self, client: str, job: "Job") -> None:
        """Register an admitted job against its client's in-flight quota."""
        if self.max_inflight is None:
            return
        with self._lock:
            self._inflight.setdefault(client, []).append(job)

    # -------------------------------------------------------------- internal
    def _reject(
        self, status: int, reason: str, retry_after: float | None
    ) -> AdmissionDecision:
        self._count("service.rejected", reason=reason)
        return AdmissionDecision(
            admitted=False, status=status, reason=reason, retry_after=retry_after
        )

    def _count(self, name: str, **labels: str) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name, **labels)
