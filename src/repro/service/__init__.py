"""repro.service — the simulation-serving subsystem.

Turns the batch reproduction into a serving system by exploiting the
determinism contract of :mod:`repro.api` (same request → bit-identical
tally on any substrate):

* :mod:`~repro.service.fingerprint` — a versioned, canonical hash of a
  :class:`~repro.api.RunRequest`, split since version 2 into a *physics
  fingerprint* (everything but the photon budget) plus ``n_photons``, so
  semantically identical requests collide on one address and a smaller
  cached run is addressable as a bitwise prefix of a larger one;
* :mod:`~repro.service.store` — a content-addressed, size-bounded LRU
  store of tally archives keyed by fingerprint, with self-verifying reads,
  an index that rebuilds itself from the artifacts after corruption, and
  prefix queries (largest cached budget below a request) over archives
  that carry their reduction frontier;
* :mod:`~repro.service.jobs` — an async job manager that answers repeats
  from the store, coalesces concurrent identical submissions onto one
  running simulation, extends cached smaller-budget results by simulating
  only the delta tasks (bit-identical to a cold run), and executes cold
  work with bounded concurrency in priority order, with per-flight
  retry/backoff and wall budgets;
* :mod:`~repro.service.journal` — a crash-safe append-only job journal:
  transitions are fsynced before they are acknowledged and replayed on
  startup, resuming interrupted flights from their checkpoints
  bit-identically;
* :mod:`~repro.service.admission` — photon-budget-aware admission
  control: per-client token buckets and in-flight quotas, a bounded
  queue, explicit 429/503 backpressure;
* :mod:`~repro.service.http` — a stdlib-only HTTP front end
  (``POST /v2/runs``, ``GET /v2/runs/<id>``,
  ``GET /v2/results/<fingerprint>``, ``GET /v2/metrics``), exposed on the
  CLI as ``tissue-mc serve-http`` with drain-on-SIGTERM.

Example
-------
>>> from repro.api import RunRequest
>>> from repro.service import JobManager
>>> with JobManager() as jobs:
...     job = jobs.submit(RunRequest(model="white_matter", n_photons=2000))
...     tally = job.result(timeout=60)
>>> tally.n_launched
2000
"""

from .admission import AdmissionController, AdmissionDecision, estimate_cost
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_physics,
    canonical_request,
    canonicalize,
    physics_fingerprint,
    request_fingerprint,
)
from .http import ServiceServer, request_from_json, request_to_json
from .jobs import PRIORITIES, Job, JobManager, JobState, JobTimeout
from .journal import JobJournal, OpenJob
from .store import ResultStore

__all__ = [
    "FINGERPRINT_VERSION",
    "PRIORITIES",
    "AdmissionController",
    "AdmissionDecision",
    "Job",
    "JobJournal",
    "JobManager",
    "JobState",
    "JobTimeout",
    "OpenJob",
    "ResultStore",
    "ServiceServer",
    "canonical_physics",
    "canonical_request",
    "canonicalize",
    "estimate_cost",
    "physics_fingerprint",
    "request_from_json",
    "request_fingerprint",
    "request_to_json",
]
