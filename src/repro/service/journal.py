"""Crash-safe job journal for the serving subsystem.

The :class:`~repro.service.jobs.JobManager` keeps all job state in memory;
a process restart would lose every queued job and every simulation in
flight.  The :class:`JobJournal` makes that state durable the same way the
distributed layer made *runs* durable (PR 1's checkpoints): an append-only
JSONL log of job transitions, fsynced per record, replayed on startup.

Journal layout (one directory, the CLI's ``--journal DIR``)::

    <root>/journal.jsonl          append-only transition log
    <root>/checkpoints/<fp>/      per-flight checkpoint directories
                                  (repro.distributed.checkpoint format)

Each line is one JSON record::

    {"v": 1, "event": "submitted", "job_id": ..., "fingerprint": ...,
     "request": {...}|null, "priority": 1, "client": ..., "ts": ...}
    {"v": 1, "event": "started",   "job_id": ..., ...}
    {"v": 1, "event": "done" | "failed" | "cancelled", "job_id": ..., ...}

Replay folds the transitions per job id: a job whose latest event is
terminal is closed; everything else is *open* and must be re-enqueued by
the manager.  A job that was ``started`` when the process died resumes
from its flight's checkpoint directory (if any) instead of restarting from
photon zero — bit-identity is inherited from the checkpoint machinery.

Durability properties
---------------------
* **Append + fsync.**  Every record is flushed and fsynced before the
  submission is acknowledged; ``kill -9`` can lose at most the record
  being written.  The fsync cost is observed into the
  ``service.journal.fsync_seconds`` histogram (disable with
  ``fsync=False`` where durability is not needed, e.g. benchmarks).
* **Torn tails tolerated.**  A crash mid-append leaves a truncated final
  line; replay skips it (counted as ``service.journal.torn``) instead of
  refusing the whole journal.
* **Atomic compaction.**  The log grows without bound unless rewritten;
  :meth:`compact` atomically replaces it (temp file + ``os.replace`` +
  directory fsync) with one ``submitted`` record per open job, so a crash
  during compaction preserves either the old or the new journal, never a
  mix.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..observe import Telemetry

__all__ = ["JobJournal", "JournalRecord", "OpenJob"]

logger = logging.getLogger(__name__)

_JOURNAL_NAME = "journal.jsonl"
_CHECKPOINTS_DIR = "checkpoints"
_RECORD_VERSION = 1

#: Events that close a job; anything else leaves it open for replay.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})

#: Compact once the log exceeds this size (checked by the manager after
#: terminal events; purely a growth bound, not a correctness knob).
DEFAULT_MAX_BYTES = 4 << 20


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal line."""

    event: str
    job_id: str
    fingerprint: str | None = None
    request: dict | None = None
    priority: int = 1
    client: str | None = None
    ts: float = 0.0


@dataclass
class OpenJob:
    """A job the journal says is still owed a result."""

    job_id: str
    fingerprint: str
    request: dict | None
    priority: int = 1
    client: str | None = None
    submitted_ts: float = 0.0
    #: True when the process died while the job's flight was running —
    #: its checkpoint directory (if any) holds partial progress.
    was_running: bool = False


class JobJournal:
    """Durable JSONL log of job transitions, with atomic compaction."""

    def __init__(
        self,
        root: str | Path,
        *,
        fsync: bool = True,
        max_bytes: int = DEFAULT_MAX_BYTES,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.max_bytes = max_bytes
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")  # noqa: SIM115

    # --------------------------------------------------------------- layout
    @property
    def path(self) -> Path:
        return self.root / _JOURNAL_NAME

    @property
    def checkpoints_root(self) -> Path:
        return self.root / _CHECKPOINTS_DIR

    def checkpoint_dir(self, fingerprint: str) -> Path:
        """Where a flight with this fingerprint checkpoints its tasks."""
        if not fingerprint or "/" in fingerprint or "." in fingerprint:
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.checkpoints_root / fingerprint

    # --------------------------------------------------------------- append
    def record(
        self,
        event: str,
        job_id: str,
        *,
        fingerprint: str | None = None,
        request: dict | None = None,
        priority: int | None = None,
        client: str | None = None,
        **extra,
    ) -> None:
        """Append one transition and make it durable before returning.

        ``extra`` fields (JSON-serialisable) ride along in the record —
        e.g. a ``started`` record for a prefix-extension delta run carries
        ``cache``/``base_fingerprint``/``delta_photons``.  Replay ignores
        fields it does not know, so extras never break recovery.
        """
        payload: dict = {"v": _RECORD_VERSION, "event": event, "job_id": job_id,
                         "ts": time.time()}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if request is not None:
            payload["request"] = request
        if priority is not None:
            payload["priority"] = priority
        if client is not None:
            payload["client"] = client
        for key, value in extra.items():
            if value is not None:
                payload[key] = value
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        with self._lock:
            if self._file.closed:
                return  # journal closed mid-shutdown: nothing left to protect
            t0 = time.perf_counter()
            self._file.write(line)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._observe("service.journal.fsync_seconds", time.perf_counter() - t0)
        self._count("service.journal.records")

    def size(self) -> int:
        """Current byte size of the log (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # --------------------------------------------------------------- replay
    def replay(self) -> list[OpenJob]:
        """Fold the log into the list of jobs still owed a result.

        Jobs come back in submission order.  A torn final line (crash
        mid-append) is skipped and counted; a ``started`` job with no
        terminal event is marked ``was_running`` so the manager resumes it
        from its checkpoint.
        """
        submitted: dict[str, OpenJob] = {}
        closed: set[str] = set()
        torn = 0
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if not isinstance(rec, dict) or rec.get("v") != _RECORD_VERSION:
                torn += 1
                continue
            event = rec.get("event")
            job_id = rec.get("job_id")
            if not isinstance(job_id, str) or not isinstance(event, str):
                torn += 1
                continue
            if event == "submitted":
                fingerprint = rec.get("fingerprint")
                if not isinstance(fingerprint, str):
                    torn += 1
                    continue
                submitted[job_id] = OpenJob(
                    job_id=job_id,
                    fingerprint=fingerprint,
                    request=rec.get("request"),
                    priority=int(rec.get("priority", 1)),
                    client=rec.get("client"),
                    submitted_ts=float(rec.get("ts", 0.0)),
                )
            elif event == "started":
                job = submitted.get(job_id)
                if job is not None:
                    job.was_running = True
            elif event in _TERMINAL_EVENTS:
                closed.add(job_id)
        if torn:
            logger.warning(
                "journal %s: skipped %d torn/unknown record(s)", self.path, torn
            )
            self._count("service.journal.torn", torn)
        return [job for job_id, job in submitted.items() if job_id not in closed]

    # ----------------------------------------------------------- compaction
    def compact(self, open_jobs: list[OpenJob]) -> None:
        """Atomically rewrite the log to exactly the given open jobs."""
        lines = []
        for job in open_jobs:
            payload: dict = {
                "v": _RECORD_VERSION,
                "event": "submitted",
                "job_id": job.job_id,
                "fingerprint": job.fingerprint,
                "ts": job.submitted_ts or time.time(),
                "priority": job.priority,
            }
            if job.request is not None:
                payload["request"] = job.request
            if job.client is not None:
                payload["client"] = job.client
            lines.append(json.dumps(payload, separators=(",", ":")))
            if job.was_running:
                lines.append(json.dumps(
                    {"v": _RECORD_VERSION, "event": "started",
                     "job_id": job.job_id, "ts": time.time()},
                    separators=(",", ":"),
                ))
        body = "".join(line + "\n" for line in lines)
        tmp = self.path.with_name(_JOURNAL_NAME + ".tmp")
        with self._lock:
            if self._file.closed:
                return
            self._file.close()
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(body)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                os.replace(tmp, self.path)
                if self.fsync:
                    self._fsync_dir()
            finally:
                tmp.unlink(missing_ok=True)
                self._file = open(self.path, "a", encoding="utf-8")  # noqa: SIM115
        self._count("service.journal.compactions")

    def _fsync_dir(self) -> None:
        # Make the rename itself durable (POSIX: fsync the directory).
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self.fsync:
                    try:
                        os.fsync(self._file.fileno())
                    except OSError:  # pragma: no cover
                        pass
                self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- metrics
    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name, amount)

    def _observe(self, name: str, value: float) -> None:
        if self.telemetry is not None:
            self.telemetry.observe(name, value)
