"""Canonical request fingerprinting.

The decomposition contract of :mod:`repro.api` — a request's tally depends
only on ``(config, n_photons, seed, task_size, kernel)``, never on the
execution substrate — makes identical requests perfectly cacheable: two
:class:`~repro.api.RunRequest` objects that describe the same physics are
guaranteed to produce bit-identical tallies.  This module turns that
guarantee into an address.  :func:`request_fingerprint` hashes a *canonical*
form of the request in which

* only physics-bearing fields participate (``workers``, ``backend``,
  ``mode``, checkpointing, telemetry, compression, ``span_size``,
  ``sub_batch``, … are excluded — execution-only knobs: ``span_size``
  cannot change the tally at all, and ``sub_batch`` yields statistically
  equivalent tallies, so neither may split the cache address);
* defaults are materialized (``task_size=None`` and
  ``task_size=DEFAULT_TASK_SIZE`` collide; a ``model`` name and the
  explicit :class:`~repro.core.SimulationConfig` it builds collide);
* field order is irrelevant (every mapping is serialised with sorted keys);
* numeric types are normalised (``np.float64(2.0)`` and ``2.0`` collide;
  ``-0.0`` collapses to ``+0.0``; floats hash by their IEEE-754 bits, so
  no decimal round-trip can split or merge values);
* numpy arrays hash by dtype, shape and raw contiguous bytes.

The canonical form is versioned: :data:`FINGERPRINT_VERSION` participates
in the hash, so any future change to the canonicalization rules moves every
fingerprint and a store populated under the old rules can never serve a
wrong answer — only a cold one.

Split addressing (version 2)
----------------------------
Task RNG streams are keyed by ``(seed, task_index)``, so a cached run is a
strict bitwise prefix of any larger-budget run with the same physics and
task size.  To exploit that, the address splits into a **physics
fingerprint** (:func:`physics_fingerprint` — everything *except*
``n_photons``) and the photon budget: the full :func:`request_fingerprint`
hashes the physics fingerprint together with ``n_photons`` (and
``task_range`` when a partial-range run is requested, since a partial
tally is a different result).  The store indexes archives by physics key
and can answer "largest cached budget ≤ requested" queries; the version
bump to 2 moves every address, so stores written under version 1 go cold,
never wrong.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import struct
import types
from typing import TYPE_CHECKING

import numpy as np

from ..tissue.layer import LayerStack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import RunRequest

__all__ = [
    "FINGERPRINT_VERSION",
    "canonicalize",
    "canonical_physics",
    "canonical_request",
    "canonical_basis",
    "derivation_basis",
    "perturbable_coefficients",
    "physics_fingerprint",
    "request_fingerprint",
]

#: Version of the canonicalization rules.  Bump on ANY change to
#: :func:`canonicalize`, :func:`canonical_physics` or
#: :func:`canonical_request` — the version is part of the hashed payload,
#: so a bump invalidates every existing fingerprint.  Version 2 split the
#: address into physics fingerprint + photon budget.
FINGERPRINT_VERSION = 2


def _float_token(x: float) -> list:
    """A float as its IEEE-754 bits (exact, JSON-safe, inf/nan included)."""
    x = float(x) + 0.0  # collapse -0.0 onto +0.0
    if math.isnan(x):
        return ["f", "nan"]
    return ["f", struct.pack("<d", x).hex()]


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Handles the value types that appear in simulation configs: scalars
    (python and numpy), sequences, mappings, numpy arrays, dataclasses
    (fields materialized, including defaults) and plain objects (public
    ``__dict__`` attributes).  Raises ``TypeError`` for anything it cannot
    canonicalize deterministically — silently guessing would risk two
    different requests sharing a fingerprint.
    """
    if obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return _float_token(obj)
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        if np.issubdtype(data.dtype, np.floating):
            data = data + 0.0  # collapse -0.0 onto +0.0, elementwise
        return [
            "a",
            data.dtype.str,
            list(data.shape),
            hashlib.sha256(data.tobytes()).hexdigest(),
        ]
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, LayerStack):
        # Not a dataclass; the coefficient vectors it precomputes are
        # derived from the layers, so only the defining state participates.
        return [
            "o",
            "repro.tissue.layer.LayerStack",
            {
                "layers": [canonicalize(layer) for layer in obj.layers],
                "n_above": _float_token(obj.n_above),
                "n_below": _float_token(obj.n_below),
            },
        ]
    cls = type(obj)
    name = f"{cls.__module__}.{cls.__qualname__}"
    if isinstance(
        obj,
        (types.FunctionType, types.BuiltinFunctionType, types.MethodType, type),
    ):
        # Functions, lambdas and classes have a ``__dict__`` but carry their
        # behaviour in code — two different ones could collide on identical
        # (typically empty) attribute dicts.
        raise TypeError(f"cannot canonicalize {name} for fingerprinting")
    if dataclasses.is_dataclass(obj):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return ["o", name, fields]
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return [
            "o",
            name,
            {k: canonicalize(v) for k, v in state.items() if not k.startswith("_")},
        ]
    raise TypeError(f"cannot canonicalize {name} for fingerprinting")


def _digest(payload: dict) -> str:
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_physics(request: "RunRequest") -> dict:
    """The canonical budget-independent form of a request.

    Everything that determines per-task results — config, seed, kernel,
    task size — but **not** ``n_photons``: two requests that differ only in
    budget share this form, which is what lets the store treat a smaller
    cached run as a bitwise prefix of a larger one.  Builds the full
    :class:`~repro.core.SimulationConfig` first, so a named ``model``
    request and the equivalent explicit-``config`` request reduce to the
    same form, and every default is materialized.
    """
    from ..api import build_config

    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "seed": int(request.seed),
        "kernel": str(request.kernel),
        "task_size": int(request.resolved_task_size()),
        "config": canonicalize(build_config(request)),
    }


def canonical_request(request: "RunRequest") -> dict:
    """The canonical (physics + budget) form of a request.

    The physics part participates as its own fingerprint, so the full
    address is literally ``hash(physics_key, n_photons, task_range)`` —
    the split the prefix-hit store exploits.  ``task_range`` (a partial
    tally is a different result) joins the budget side; in-memory
    execution knobs like a primed frontier do not participate at all
    (priming never changes the final tally).
    """
    payload = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "physics": physics_fingerprint(request),
        "n_photons": int(request.n_photons),
    }
    task_range = getattr(request, "task_range", None)
    if task_range is not None:
        payload["task_range"] = [int(task_range[0]), int(task_range[1])]
    return payload


def _normalized_stack(stack: LayerStack) -> LayerStack:
    """The stack with every perturbable coefficient pinned to 1.0.

    Two requests share a normalized stack iff they differ *only* in layer
    absorption/scattering coefficients — exactly the family that
    :mod:`repro.perturb` can derive one member of from another without
    re-simulating.
    """
    from ..tissue.layer import Layer, OpticalProperties

    return LayerStack(
        [
            Layer(
                name=layer.name,
                properties=OpticalProperties(
                    mu_a=1.0,
                    mu_s=1.0,
                    g=layer.properties.g,
                    n=layer.properties.n,
                ),
                thickness=layer.thickness,
            )
            for layer in stack.layers
        ],
        n_above=stack.n_above,
        n_below=stack.n_below,
    )


def canonical_basis(request: "RunRequest") -> dict:
    """The canonical form of a request with μa/μs factored out.

    Identical to :func:`canonical_physics` except the tissue stack's
    ``mu_a``/``mu_s`` are pinned to 1.0 per layer — all other physics
    (geometry, anisotropy, refractive indices, source, detector, gate,
    boundary mode, seed, kernel, task size) stays in.  Two requests with
    equal bases are perturbation siblings: the detected-photon estimators
    of one can be derived from the other's path records.
    """
    from ..api import build_config

    config = build_config(request)
    payload = canonical_physics(request)
    payload["config"] = canonicalize(
        dataclasses.replace(config, stack=_normalized_stack(config.stack))
    )
    # Distinct namespace: an all-ones stack must not collide with its own
    # physics fingerprint.
    payload["role"] = "derivation_basis"
    return payload


def derivation_basis(request: "RunRequest") -> str:
    """Stable hex key of a request's perturbation family.

    Requests that differ only in layer μa/μs (and possibly ``n_photons``)
    share a basis; the result store indexes paths-bearing archives by it so
    a miss can be answered by reweighting a sibling's records
    (:mod:`repro.perturb`) instead of re-simulating.
    """
    return _digest(canonical_basis(request))


def perturbable_coefficients(request: "RunRequest") -> dict:
    """The per-layer μa/μs a request asks for (plain floats, layer order).

    The complement of :func:`canonical_basis`: together they reconstruct
    the physics of the request.  Stored in provenance and the result-store
    index so a derivation can compute the coefficient delta between a
    request and a cached sibling without rebuilding either config.
    """
    from ..api import build_config

    stack = build_config(request).stack
    return {
        "mu_a": [float(v) for v in stack.mu_a],
        "mu_s": [float(v) for v in stack.mu_s],
    }


def physics_fingerprint(request: "RunRequest") -> str:
    """Stable hex fingerprint of a request's budget-independent physics."""
    return _digest(canonical_physics(request))


def request_fingerprint(request: "RunRequest") -> str:
    """Stable hex fingerprint of the result a request describes.

    Two requests share a fingerprint iff their canonical forms are equal —
    and by the decomposition contract, equal canonical forms guarantee
    bit-identical tallies on any substrate.
    """
    return _digest(canonical_request(request))
