"""Content-addressed result store.

Tallies are persisted under their request fingerprint —
``<root>/<fingerprint>.npz`` — via the versioned archive format of
:mod:`repro.io.results`, alongside a JSON index carrying sizes and access
times.  The store is the serving system's memory: a request whose
fingerprint is present never has to be simulated again.

Properties
----------
* **Atomic writes.**  Both the archive (``save_tally``'s temp-file +
  ``os.replace``) and the index are written atomically; a reader or a
  concurrent server process never observes a torn artifact.
* **Self-verifying reads.**  Every stored tally embeds its fingerprint in
  the archive provenance; :meth:`ResultStore.get` re-checks it on load
  (see ``load_tally(expected_fingerprint=...)``).  A stale or foreign
  artifact — hand-copied into the store, or produced under different
  canonicalization rules — is evicted and reported as a miss instead of
  being served as a wrong answer.
* **Bounded size.**  ``max_bytes`` caps the total archive footprint with
  least-recently-used eviction (access order, not insertion order).
* **Prefix addressing.**  Entries carry their **physics fingerprint**
  (budget-independent; see :func:`repro.service.physics_fingerprint`) and
  photon budget, so :meth:`ResultStore.best_prefix` answers "largest
  cached budget below the requested one" queries.  An archive saved with
  its reduction frontier (:meth:`put` ``frontier=...``) is
  *budget-extendable*: :meth:`get_frontier` restores the span partials a
  delta run primes into its reducer.  Storing a larger budget for the
  same physics **supersedes** dominated smaller-budget entries (same
  physics, smaller budget, no wider frontier, no path records the new
  entry lacks) — the larger archive answers every query the smaller one
  could.
* **Derivation addressing.**  Entries also carry their **derivation
  basis** (μa/μs factored out; see
  :func:`repro.service.derivation_basis`), the per-layer coefficients,
  and whether the archive holds per-photon path records.
  :meth:`best_derivation` answers "which cached sibling can a
  perturbation-MC reweighting (:mod:`repro.perturb`) derive this request
  from" queries; :meth:`get_paths` restores the records.
* **Observability.**  Hits, misses, evictions, supersessions, foreign
  rejections and the current byte footprint flow into a
  :class:`~repro.observe.Telemetry` when one is attached.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path

from ..core.reduce import TallyFrontier
from ..core.tally import Tally
from ..detect.records import PathRecords
from ..io.results import (
    archive_summary,
    load_frontier,
    load_paths,
    load_tally,
    save_tally,
)
from ..observe import Telemetry

__all__ = ["ResultStore"]

logger = logging.getLogger(__name__)

_INDEX_NAME = "index.json"
#: Version 3 added derivation addressing (basis, coefficients, paths flag).
_INDEX_VERSION = 3

#: Default size bound: 1 GiB of tally archives.
DEFAULT_MAX_BYTES = 1 << 30


def _prefix_tasks(spans) -> int:
    """Tasks covered by a contiguous-from-zero span list, else 0."""
    expect = 0
    for start, stop in spans:
        if start != expect:
            return 0
        expect = stop
    return expect


class ResultStore:
    """A size-bounded, content-addressed cache of simulation tallies."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0 or None, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.telemetry = telemetry
        self._lock = threading.RLock()
        self._rebuilt = False
        self._index: dict[str, dict] = self._load_index()
        if self._rebuilt:
            with self._lock:
                self._save_index()
        self._prune_missing()

    # ------------------------------------------------------------- index I/O
    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _load_index(self) -> dict[str, dict]:
        try:
            raw = json.loads(self._index_path.read_text())
        except FileNotFoundError:
            # No index at all.  A fresh store is the common case; artifacts
            # without an index mean the index was lost — rebuild from them.
            return self._rebuild_index() if any(self.root.glob("*.npz")) else {}
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Corrupt or truncated index (e.g. the process died mid-crash
            # with a torn file): the artifacts are the ground truth.
            return self._rebuild_index()
        if not isinstance(raw, dict) or raw.get("index_version") != _INDEX_VERSION:
            return self._rebuild_index()
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return self._rebuild_index()
        return dict(entries)

    def _rebuild_index(self) -> dict[str, dict]:
        """Reconstruct the index from the ``*.npz`` artifacts on disk.

        Sizes and access times come from ``stat``; content correctness is
        not re-verified here — every :meth:`get` self-verifies the archive
        provenance anyway, so a corrupt artifact is evicted on first read
        rather than blocking startup.
        """
        entries: dict[str, dict] = {}
        for path in sorted(self.root.glob("*.npz")):
            fingerprint = path.stem
            if not fingerprint or "/" in fingerprint or "." in fingerprint:
                continue  # not a store artifact
            try:
                st = path.stat()
            except OSError:
                continue
            entry = {
                "bytes": st.st_size,
                "created": st.st_mtime,
                "last_access": st.st_mtime,
                "physics": None,
                "n_photons": None,
                "frontier_tasks": 0,
                "basis": None,
                "coefficients": None,
                "paths": False,
                "derived": False,
            }
            # Recover the prefix/derivation-addressing metadata from the
            # archive header; an unreadable artifact still gets a bare
            # entry — the first get() self-verifies and evicts it if
            # foreign.
            try:
                summary = archive_summary(path)
            except (ValueError, OSError, KeyError, json.JSONDecodeError):
                summary = None
            if summary is not None:
                prov = summary["provenance"] or {}
                entry["physics"] = prov.get("physics_fingerprint")
                if prov.get("task_range") is None:
                    entry["n_photons"] = prov.get("n_photons")
                entry["frontier_tasks"] = _prefix_tasks(summary["frontier_spans"])
                entry["basis"] = prov.get("derivation_basis")
                entry["coefficients"] = prov.get("coefficients")
                entry["paths"] = "paths" in summary.get("sections", [])
                # "derived" means perturbation-reweighted (approximate for
                # scattering); prefix-extended entries also carry
                # ``derived_from`` but are exact simulation — distinguish
                # by the perturbation payload.
                entry["derived"] = "perturbation" in (prov.get("derived_from") or {})
            entries[fingerprint] = entry
        logger.warning(
            "result store %s: index unreadable, rebuilt from %d artifact(s)",
            self.root, len(entries),
        )
        self._count("service.store.index_rebuilds")
        self._rebuilt = True
        return entries

    def _save_index(self) -> None:
        payload = json.dumps(
            {"index_version": _INDEX_VERSION, "entries": self._index}
        )
        tmp = self._index_path.with_name(_INDEX_NAME + ".tmp")
        try:
            tmp.write_text(payload)
            os.replace(tmp, self._index_path)
        finally:
            tmp.unlink(missing_ok=True)

    def _prune_missing(self) -> None:
        with self._lock:
            stale = [fp for fp in self._index if not self.path(fp).exists()]
            for fp in stale:
                del self._index[fp]
            if stale:
                self._save_index()
            self._set_bytes_gauge()

    # ------------------------------------------------------------- accessors
    def path(self, fingerprint: str) -> Path:
        """Where an artifact with this fingerprint lives (existing or not)."""
        if not fingerprint or "/" in fingerprint or "." in fingerprint:
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.root / f"{fingerprint}.npz"

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._index)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(e["bytes"] for e in self._index.values())

    # ------------------------------------------------------------ operations
    def get(self, fingerprint: str) -> Tally | None:
        """The stored tally, or ``None`` on miss.

        A present-but-foreign artifact (provenance fingerprint absent or
        different) is deleted and counted as ``service.store.foreign`` — the
        store never serves a result it cannot prove belongs to the request.
        """
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None or not self.path(fingerprint).exists():
                self._count("service.store.misses")
                return None
            try:
                tally = load_tally(
                    self.path(fingerprint), expected_fingerprint=fingerprint
                )
            except (ValueError, OSError, KeyError):
                self._evict(fingerprint)
                self._save_index()
                self._count("service.store.foreign")
                self._count("service.store.misses")
                return None
            entry["last_access"] = time.time()
            self._save_index()
            self._count("service.store.hits")
            return tally

    def read_bytes(self, fingerprint: str) -> bytes | None:
        """The raw ``.npz`` archive bytes (for HTTP serving), or ``None``."""
        path = self.path(fingerprint)  # validates before touching the index
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None:
                return None
            try:
                data = path.read_bytes()
            except OSError:
                self._evict(fingerprint)
                self._save_index()
                return None
            entry["last_access"] = time.time()
            self._save_index()
            return data

    def put(
        self,
        fingerprint: str,
        tally: Tally,
        provenance: dict | None = None,
        *,
        physics: str | None = None,
        n_photons: int | None = None,
        frontier: TallyFrontier | None = None,
        basis: str | None = None,
        coefficients: dict | None = None,
        derived: bool = False,
    ) -> Path:
        """Persist ``tally`` under ``fingerprint``; returns the archive path.

        The fingerprint is stamped into the archive provenance (overriding
        any caller-supplied value) so :meth:`get` can verify the artifact.

        ``physics`` / ``n_photons`` register the entry for
        :meth:`best_prefix` queries; ``frontier`` stores the run's reducer
        span partials in the archive, making the entry budget-extendable
        (restored via :meth:`get_frontier`).  ``basis`` / ``coefficients``
        (see :func:`repro.service.derivation_basis` and
        :func:`repro.service.perturbable_coefficients`) register it for
        :meth:`best_derivation` queries; path records travel on
        ``tally.paths`` and are persisted automatically by ``save_tally``.
        ``derived`` marks entries produced by reweighting rather than
        simulation (dispreferred as future derivation parents, so
        approximation error never compounds silently).

        A new entry **supersedes** same-physics entries with a smaller
        budget whose frontier covers no more tasks than the new one and
        which hold no path records the new entry lacks — the larger
        archive then answers every query the smaller one could, so the
        smaller is freed immediately.

        Eviction runs after the write: least-recently-used artifacts are
        deleted until the store fits ``max_bytes`` again (the newly written
        artifact is kept even if it alone exceeds the bound — a cache that
        rejects its newest entry would never converge).
        """
        provenance = dict(provenance or {})
        provenance["fingerprint"] = fingerprint
        if physics is not None:
            provenance.setdefault("physics_fingerprint", physics)
        if basis is not None:
            provenance.setdefault("derivation_basis", basis)
        if coefficients is not None:
            provenance.setdefault("coefficients", coefficients)
        frontier_tasks = frontier.prefix_tasks if frontier is not None else 0
        has_paths = tally.paths is not None
        with self._lock:
            path = save_tally(
                self.path(fingerprint), tally, provenance=provenance,
                frontier=frontier,
            )
            now = time.time()
            self._index[fingerprint] = {
                "bytes": path.stat().st_size,
                "created": now,
                "last_access": now,
                "physics": physics,
                "n_photons": int(n_photons) if n_photons is not None else None,
                "frontier_tasks": frontier_tasks,
                "basis": basis,
                "coefficients": coefficients,
                "paths": has_paths,
                "derived": bool(derived),
            }
            if physics is not None and n_photons is not None:
                for fp, entry in list(self._index.items()):
                    if (
                        fp != fingerprint
                        and entry.get("physics") == physics
                        and entry.get("n_photons") is not None
                        and entry["n_photons"] < n_photons
                        and entry.get("frontier_tasks", 0) <= frontier_tasks
                        # Never free a paths-bearing entry for a paths-less
                        # one: the records are what derivations feed on.
                        and (has_paths or not entry.get("paths", False))
                    ):
                        self._evict(fp)
                        self._count("service.store.superseded")
            self._evict_over_budget(keep=fingerprint)
            self._save_index()
            self._set_bytes_gauge()
            return path

    def best_prefix(
        self, physics: str, n_photons: int
    ) -> tuple[str, int, int] | None:
        """The best budget-extension base for a ``(physics, n_photons)`` query.

        Returns ``(fingerprint, cached_n_photons, frontier_tasks)`` for the
        largest-budget entry with the same physics fingerprint, a strictly
        smaller budget, and a usable (non-empty, prefix-shaped) stored
        frontier — or ``None`` when no such entry exists.  An exact-budget
        hit is :meth:`get`'s business, not this method's.
        """
        with self._lock:
            best: tuple[str, int, int] | None = None
            for fp, entry in self._index.items():
                cached = entry.get("n_photons")
                if (
                    entry.get("physics") != physics
                    or cached is None
                    or cached >= n_photons
                    or entry.get("frontier_tasks", 0) <= 0
                ):
                    continue
                if best is None or cached > best[1]:
                    best = (fp, cached, entry["frontier_tasks"])
            return best

    def best_derivation(
        self, basis: str, n_photons: int, *, exclude: str | None = None
    ) -> tuple[str, dict, bool] | None:
        """The best perturbation parent for a ``(basis, n_photons)`` query.

        Returns ``(fingerprint, coefficients, derived)`` for a cached entry
        with the same derivation basis, the **same** photon budget (a
        derivation reweights the detected ensemble — it cannot change its
        size) and stored path records, or ``None``.  Simulation-born
        parents are preferred over derived ones (so scattering
        approximation error never compounds); among equals the most
        recently accessed wins.  ``exclude`` skips one fingerprint
        (typically the request's own, which would be an exact hit, not a
        derivation).
        """
        with self._lock:
            best: tuple[str, dict, bool] | None = None
            best_rank: tuple | None = None
            for fp, entry in self._index.items():
                if (
                    fp == exclude
                    or entry.get("basis") != basis
                    or entry.get("basis") is None
                    or not entry.get("paths", False)
                    or entry.get("n_photons") != n_photons
                    or not entry.get("coefficients")
                ):
                    continue
                rank = (not entry.get("derived", False), entry.get("last_access", 0))
                if best_rank is None or rank > best_rank:
                    best = (fp, entry["coefficients"], bool(entry.get("derived")))
                    best_rank = rank
            return best

    def get_paths(self, fingerprint: str) -> PathRecords | None:
        """The stored path records for an entry, or ``None``.

        Self-verifying like :meth:`get`: a foreign or unreadable artifact
        is evicted and reported as a miss, never served as a parent.
        """
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None or not self.path(fingerprint).exists():
                return None
            try:
                paths = load_paths(
                    self.path(fingerprint), expected_fingerprint=fingerprint
                )
            except (ValueError, OSError, KeyError):
                self._evict(fingerprint)
                self._save_index()
                self._count("service.store.foreign")
                return None
            if paths is None:
                return None
            entry["last_access"] = time.time()
            self._save_index()
            return paths

    def get_frontier(self, fingerprint: str) -> TallyFrontier | None:
        """The stored reduction frontier for an entry, or ``None``.

        Self-verifying like :meth:`get`: a foreign or unreadable artifact
        is evicted and reported as a miss, never served as a base.
        """
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None or not self.path(fingerprint).exists():
                return None
            try:
                frontier = load_frontier(
                    self.path(fingerprint), expected_fingerprint=fingerprint
                )
            except (ValueError, OSError, KeyError):
                self._evict(fingerprint)
                self._save_index()
                self._count("service.store.foreign")
                return None
            if frontier is None:
                return None
            entry["last_access"] = time.time()
            self._save_index()
            return frontier

    def clear(self) -> None:
        with self._lock:
            for fp in list(self._index):
                self._evict(fp)
            self._save_index()
            self._set_bytes_gauge()

    # -------------------------------------------------------------- eviction
    def _evict_over_budget(self, keep: str) -> None:
        if self.max_bytes is None:
            return
        total = sum(e["bytes"] for e in self._index.values())
        victims = sorted(
            (fp for fp in self._index if fp != keep),
            key=lambda fp: self._index[fp]["last_access"],
        )
        for fp in victims:
            if total <= self.max_bytes:
                break
            total -= self._index[fp]["bytes"]
            self._evict(fp)
            self._count("service.store.evictions")

    def _evict(self, fingerprint: str) -> None:
        self._index.pop(fingerprint, None)
        self.path(fingerprint).unlink(missing_ok=True)

    # --------------------------------------------------------------- metrics
    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name)

    def _set_bytes_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(
                "service.store.bytes", sum(e["bytes"] for e in self._index.values())
            )
