"""Derived physical quantities from tallies.

Helpers that turn raw tally weights into the quantities the NIRS literature
(and the paper's discussion) works with: radially resolved diffuse
reflectance R(rho), differential pathlength factors, mean time of flight and
layer-wise absorption summaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..tissue.layer import LayerStack
from ..tissue.optical import SPEED_OF_LIGHT_MM_PER_NS

if TYPE_CHECKING:  # imported lazily to avoid a core <-> detect import cycle
    from ..core.tally import Tally

__all__ = [
    "radial_reflectance",
    "mean_time_of_flight",
    "differential_pathlength_factor",
    "layer_absorption_report",
]


def radial_reflectance(tally: Tally) -> tuple[np.ndarray, np.ndarray]:
    """Radially resolved diffuse reflectance R(rho) in mm⁻².

    Requires the tally to have been recorded with ``reflectance_rho_bins``.

    Returns
    -------
    rho:
        Annulus-centre radii (mm).
    r_of_rho:
        Escaping weight per launched photon per unit area (mm⁻²) in each
        annulus — the quantity diffusion theory predicts.
    """
    hist = tally.reflectance_rho_hist
    if hist is None:
        raise ValueError("tally has no reflectance_rho histogram; enable it in RecordConfig")
    if tally.n_launched == 0:
        raise ValueError("tally is empty")
    edges = hist.edges
    areas = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
    return hist.centres, hist.counts / (areas * tally.n_launched)


def mean_time_of_flight(tally: Tally) -> float:
    """Mean time of flight of detected photons in ns.

    The pathlength statistic stores *optical* pathlengths (n-weighted), so
    time of flight is pathlength / c_vacuum.
    """
    return tally.pathlength.mean / SPEED_OF_LIGHT_MM_PER_NS


def differential_pathlength_factor(tally: Tally, spacing: float) -> float:
    """DPF: mean detected pathlength over source–detector spacing.

    The paper (§1): "This distance, known as the differential pathlength, is
    needed to quantify absorption and scattering coefficients and
    consequently chromophore concentrations."
    """
    return tally.differential_pathlength_factor(spacing)


def layer_absorption_report(tally: Tally, stack: LayerStack) -> list[dict[str, float | str]]:
    """Per-layer absorbed fractions as a list of dict rows (for tables)."""
    if len(stack) != tally.n_layers:
        raise ValueError("stack layer count does not match the tally")
    fractions = tally.absorbed_fraction
    return [
        {"layer": layer.name, "absorbed_fraction": float(fractions[i])}
        for i, layer in enumerate(stack)
    ]
