"""Surface detectors (optodes).

A detector decides whether a photon escaping through the top surface
(z = 0) is scored — the "if photon passed through detector: save path and
end" branch of the paper's Fig. 1 pseudocode.  Detectors see the escape
position and direction; time/pathlength gating is applied separately
(:mod:`repro.detect.gating`) so the same geometry can be reused gated and
ungated.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Detector", "DiscDetector", "AnnularDetector", "AcceptAll"]


class Detector(abc.ABC):
    """Abstract surface detector on the z = 0 plane."""

    @abc.abstractmethod
    def accepts(
        self, x: np.ndarray, y: np.ndarray, uz: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of escaping photons the detector accepts.

        Parameters
        ----------
        x, y:
            Escape positions on the surface (mm).
        uz:
            z direction cosine at escape (negative: photon travels upward,
            out of the tissue).
        """

    @staticmethod
    def _check_na(numerical_aperture: float) -> float:
        if not 0.0 < numerical_aperture <= 1.0:
            raise ValueError(
                f"numerical_aperture must lie in (0, 1], got {numerical_aperture}"
            )
        return float(numerical_aperture)

    def _within_acceptance(self, uz: np.ndarray, numerical_aperture: float) -> np.ndarray:
        """Photons whose exit direction falls inside the acceptance cone.

        For an exit direction with z-cosine ``uz`` (< 0 going up), the angle
        from the surface normal has ``|cos| = |uz|``; acceptance requires
        ``sin(exit angle) <= NA`` i.e. ``|uz| >= sqrt(1 - NA^2)``.
        """
        min_cos = np.sqrt(max(0.0, 1.0 - numerical_aperture**2))
        return np.abs(uz) >= min_cos


class DiscDetector(Detector):
    """Circular detector of radius ``radius`` centred at ``(x0, y0)``.

    Models a fibre/optode face a distance ``spacing = hypot(x0, y0)`` from a
    source at the origin — the "source/detector spacing" of the paper's
    NIRS discussion (20–60 mm interoptode distances).
    """

    def __init__(
        self,
        x0: float,
        y0: float,
        radius: float,
        *,
        numerical_aperture: float = 1.0,
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be > 0, got {radius}")
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.radius = float(radius)
        self.numerical_aperture = self._check_na(numerical_aperture)

    @property
    def spacing_from_origin(self) -> float:
        """Distance from the coordinate origin (where sources default) in mm."""
        return float(np.hypot(self.x0, self.y0))

    def accepts(self, x: np.ndarray, y: np.ndarray, uz: np.ndarray) -> np.ndarray:
        dx = np.asarray(x) - self.x0
        dy = np.asarray(y) - self.y0
        inside = dx * dx + dy * dy <= self.radius * self.radius
        return inside & self._within_acceptance(np.asarray(uz), self.numerical_aperture)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DiscDetector(x0={self.x0}, y0={self.y0}, radius={self.radius}, "
            f"numerical_aperture={self.numerical_aperture})"
        )


class AnnularDetector(Detector):
    """Annular (ring) detector centred on the source axis.

    Accepts photons escaping at radial distance rho in
    [``rho_min``, ``rho_max``) from ``(x0, y0)``.  The standard geometry for
    radially resolved reflectance R(rho) and for azimuthally symmetric
    sensitivity profiles: the ring aggregates all azimuths, improving
    statistics at no modelling cost for a pencil beam.
    """

    def __init__(
        self,
        rho_min: float,
        rho_max: float,
        x0: float = 0.0,
        y0: float = 0.0,
        *,
        numerical_aperture: float = 1.0,
    ) -> None:
        if rho_min < 0:
            raise ValueError(f"rho_min must be >= 0, got {rho_min}")
        if rho_max <= rho_min:
            raise ValueError(f"need rho_max > rho_min, got [{rho_min}, {rho_max})")
        self.rho_min = float(rho_min)
        self.rho_max = float(rho_max)
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.numerical_aperture = self._check_na(numerical_aperture)

    @property
    def mean_radius(self) -> float:
        """Mid-radius of the annulus (the nominal source–detector spacing)."""
        return 0.5 * (self.rho_min + self.rho_max)

    @property
    def area(self) -> float:
        """Collection area in mm² (for converting weight to reflectance/mm²)."""
        return float(np.pi * (self.rho_max**2 - self.rho_min**2))

    def accepts(self, x: np.ndarray, y: np.ndarray, uz: np.ndarray) -> np.ndarray:
        dx = np.asarray(x) - self.x0
        dy = np.asarray(y) - self.y0
        rho2 = dx * dx + dy * dy
        inside = (rho2 >= self.rho_min**2) & (rho2 < self.rho_max**2)
        return inside & self._within_acceptance(np.asarray(uz), self.numerical_aperture)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AnnularDetector(rho_min={self.rho_min}, rho_max={self.rho_max}, "
            f"x0={self.x0}, y0={self.y0}, numerical_aperture={self.numerical_aperture})"
        )


class AcceptAll(Detector):
    """Detector covering the whole top surface (every escaping photon scores).

    Useful for total-diffuse-reflectance validation runs where the quantity
    of interest is the energy balance rather than an optode geometry.
    """

    def accepts(self, x: np.ndarray, y: np.ndarray, uz: np.ndarray) -> np.ndarray:
        return np.ones(np.broadcast(x, y, uz).shape, dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover
        return "AcceptAll()"
