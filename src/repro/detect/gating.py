"""Time / pathlength gating of detected photons.

The paper: "In a real world experiment the pulse interferes with the paths
taken by photons so the source and detector only operate between pulses.
Thus the ability to gate the pathlengths allows for the simulation of this."

A gate is a window on the *optical pathlength* accumulated by a photon
(equivalently on its time of flight, t = sum_i n_i * l_i / c): a detected
photon is scored only when its pathlength falls inside the window.  The gate
is applied at detection time, so the same simulation records both gated and
ungated quantities when desired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..tissue.optical import SPEED_OF_LIGHT_MM_PER_NS

__all__ = ["PathlengthGate", "TimeGate", "open_gate"]


@dataclass(frozen=True)
class PathlengthGate:
    """Accept photons with optical pathlength in [l_min, l_max) millimetres.

    The *optical* pathlength is sum(n_i * geometric length in medium i); for
    a single-index medium it is simply n times the geometric pathlength.
    """

    l_min: float = 0.0
    l_max: float = math.inf

    def __post_init__(self) -> None:
        if self.l_min < 0:
            raise ValueError(f"l_min must be >= 0, got {self.l_min}")
        if self.l_max <= self.l_min:
            raise ValueError(f"need l_max > l_min, got [{self.l_min}, {self.l_max})")

    def accepts(self, optical_pathlength: np.ndarray) -> np.ndarray:
        l = np.asarray(optical_pathlength, dtype=np.float64)
        return (l >= self.l_min) & (l < self.l_max)

    @property
    def is_open(self) -> bool:
        """True when the gate passes everything."""
        return self.l_min == 0.0 and math.isinf(self.l_max)


@dataclass(frozen=True)
class TimeGate:
    """Accept photons detected between t_min and t_max nanoseconds.

    Time of flight for optical pathlength L is ``t = L / c`` with c the
    vacuum speed of light (the refractive index is already folded into the
    optical pathlength).
    """

    t_min: float = 0.0
    t_max: float = math.inf

    def __post_init__(self) -> None:
        if self.t_min < 0:
            raise ValueError(f"t_min must be >= 0, got {self.t_min}")
        if self.t_max <= self.t_min:
            raise ValueError(f"need t_max > t_min, got [{self.t_min}, {self.t_max})")

    def to_pathlength_gate(self) -> PathlengthGate:
        """Equivalent gate on optical pathlength."""
        return PathlengthGate(
            l_min=self.t_min * SPEED_OF_LIGHT_MM_PER_NS,
            l_max=self.t_max * SPEED_OF_LIGHT_MM_PER_NS,
        )

    def accepts(self, optical_pathlength: np.ndarray) -> np.ndarray:
        return self.to_pathlength_gate().accepts(optical_pathlength)

    @property
    def is_open(self) -> bool:
        return self.t_min == 0.0 and math.isinf(self.t_max)


def open_gate() -> PathlengthGate:
    """A gate that accepts every pathlength (ungated operation)."""
    return PathlengthGate()
