"""Temporal point spread functions (TPSF) from pathlength histograms.

A time-of-flight NIRS instrument measures the distribution of photon
arrival times — the TPSF.  Our kernels record detected *optical
pathlengths*; time of flight is pathlength over the vacuum speed of light
(the refractive index is folded into the optical pathlength), so the
recorded pathlength histogram *is* the TPSF up to a change of axis.

The TPSF is what the paper's gated mode slices: a gate [t0, t1) keeps the
corresponding TPSF band.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..tissue.optical import SPEED_OF_LIGHT_MM_PER_NS

if TYPE_CHECKING:  # imported lazily to avoid a core <-> detect import cycle
    from ..core.tally import Tally

__all__ = ["tpsf", "tpsf_moments"]


def tpsf(tally: Tally) -> tuple[np.ndarray, np.ndarray]:
    """Detected-photon TPSF from the tally's pathlength histogram.

    Returns
    -------
    t:
        Bin-centre arrival times in ns.
    intensity:
        Detected weight per launched photon per ns in each bin (so the
        curve integrates to the detected weight fraction).
    """
    hist = tally.pathlength_hist
    if hist is None:
        raise ValueError("tally has no pathlength histogram; set pathlength_bins")
    if tally.n_launched == 0:
        raise ValueError("tally is empty")
    t = hist.centres / SPEED_OF_LIGHT_MM_PER_NS
    dt = np.diff(hist.edges) / SPEED_OF_LIGHT_MM_PER_NS
    return t, hist.counts / (dt * tally.n_launched)


def tpsf_moments(tally: Tally) -> dict[str, float]:
    """Mean time of flight and temporal spread of the TPSF.

    Returns ``{"mean_ns", "std_ns", "total_weight_fraction"}``; the moments
    are weight-averaged over the histogram (NaN when nothing was detected).
    """
    hist = tally.pathlength_hist
    if hist is None:
        raise ValueError("tally has no pathlength histogram; set pathlength_bins")
    total = hist.total
    if total <= 0:
        return {
            "mean_ns": float("nan"),
            "std_ns": float("nan"),
            "total_weight_fraction": 0.0,
        }
    t = hist.centres / SPEED_OF_LIGHT_MM_PER_NS
    mean = float((t * hist.counts).sum() / total)
    var = float(((t - mean) ** 2 * hist.counts).sum() / total)
    return {
        "mean_ns": mean,
        "std_ns": float(np.sqrt(var)),
        "total_weight_fraction": total / tally.n_launched if tally.n_launched else 0.0,
    }
