"""Detection, gating and result recording."""

from .detector import AcceptAll, AnnularDetector, Detector, DiscDetector
from .gating import PathlengthGate, TimeGate, open_gate
from .quantities import (
    differential_pathlength_factor,
    layer_absorption_report,
    mean_time_of_flight,
    radial_reflectance,
)
from .records import GridSpec, Histogram, PathRecords, RunningStat
from .tpsf import tpsf, tpsf_moments

__all__ = [
    "AcceptAll",
    "AnnularDetector",
    "Detector",
    "DiscDetector",
    "GridSpec",
    "Histogram",
    "PathRecords",
    "PathlengthGate",
    "RunningStat",
    "TimeGate",
    "differential_pathlength_factor",
    "layer_absorption_report",
    "mean_time_of_flight",
    "open_gate",
    "radial_reflectance",
    "tpsf",
    "tpsf_moments",
]
