"""Result-recording primitives: voxel grids and mergeable running statistics.

The paper's application offers "user defined granularity of results": photon
paths and absorbed energy are accumulated on a regular 3-D voxel grid whose
resolution the user chooses (Fig. 3 uses granularity 50³).  ``GridSpec``
describes such a grid and provides the vectorised world→voxel mapping; the
actual accumulation arrays live in the tallies so they can be merged across
distributed workers by plain addition.

``RunningStat`` is a mergeable first/second-moment accumulator used for the
differential-pathlength and penetration-depth statistics.

``PathRecords`` keeps *per-detected-photon* path statistics — per-layer
geometric pathlength, exit weight, optical pathlength, maximum depth and
detector id — the raw material of perturbation ("white") Monte Carlo:
:mod:`repro.perturb` re-weights these rows to derive tallies for perturbed
optical properties without re-simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GridSpec", "RunningStat", "Histogram", "PathRecords"]


@dataclass(frozen=True)
class GridSpec:
    """A regular 3-D voxel grid over an axis-aligned box.

    Attributes
    ----------
    shape:
        Number of voxels along (x, y, z) — the paper's "granularity".
        Fig. 3 uses (50, 50, 50).
    lo, hi:
        Box corners in mm; ``lo < hi`` component-wise.
    """

    shape: tuple[int, int, int]
    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(s <= 0 for s in self.shape):
            raise ValueError(f"shape must be three positive ints, got {self.shape}")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"need lo < hi component-wise, got lo={self.lo} hi={self.hi}")

    @classmethod
    def cube(cls, granularity: int, half_extent: float, depth: float) -> "GridSpec":
        """Grid of ``granularity``³ voxels centred on the beam axis.

        Covers x, y in [-half_extent, +half_extent] and z in [0, depth] —
        the natural frame for the paper's surface-launched experiments.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be > 0, got {granularity}")
        if half_extent <= 0 or depth <= 0:
            raise ValueError("half_extent and depth must be > 0")
        return cls(
            shape=(granularity, granularity, granularity),
            lo=(-half_extent, -half_extent, 0.0),
            hi=(half_extent, half_extent, depth),
        )

    @classmethod
    def banana_box(
        cls,
        granularity: int,
        spacing: float,
        *,
        margin: float = 2.0,
        depth: float | None = None,
        y_halfwidth: float | None = None,
    ) -> "GridSpec":
        """Grid framing a source-detector pair for Fig. 3 style profiles.

        Covers x in [-margin, spacing + margin] (source at x = 0, detector
        at x = spacing), y in [-y_halfwidth, +y_halfwidth] and z in
        [0, depth].  Defaults scale with the optode spacing: depth equal to
        the spacing + margin (bananas peak near spacing/2), y half-width
        equal to half the spacing.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be > 0, got {granularity}")
        if spacing <= 0:
            raise ValueError(f"spacing must be > 0, got {spacing}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        depth = depth if depth is not None else spacing + margin
        y_half = y_halfwidth if y_halfwidth is not None else max(0.5 * spacing, margin)
        return cls(
            shape=(granularity, granularity, granularity),
            lo=(-margin, -y_half, 0.0),
            hi=(spacing + margin, y_half, depth),
        )

    @property
    def voxel_size(self) -> tuple[float, float, float]:
        """Edge lengths of one voxel (mm)."""
        return tuple(
            (h - l) / s for l, h, s in zip(self.lo, self.hi, self.shape)
        )  # type: ignore[return-value]

    @property
    def voxel_volume(self) -> float:
        """Volume of one voxel (mm³)."""
        dx, dy, dz = self.voxel_size
        return dx * dy * dz

    @property
    def n_voxels(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def zeros(self) -> np.ndarray:
        """A fresh accumulation array for this grid."""
        return np.zeros(self.shape, dtype=np.float64)

    def axis_centres(self, axis: int) -> np.ndarray:
        """Voxel-centre coordinates along ``axis`` (0=x, 1=y, 2=z), in mm."""
        n = self.shape[axis]
        lo = self.lo[axis]
        hi = self.hi[axis]
        edges = np.linspace(lo, hi, n + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    def world_to_index(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map world points to flat voxel indices.

        Returns
        -------
        flat_index:
            int64 array of flattened (C-order) voxel indices; undefined where
            ``inside`` is False.
        inside:
            Boolean mask of points that fall inside the grid box.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        nx, ny, nz = self.shape
        # Insideness is defined on the coordinates themselves (half-open
        # box), then indices are clipped into range: this keeps points an
        # epsilon inside a face from rounding to an out-of-range voxel.
        inside = (
            (x >= self.lo[0]) & (x < self.hi[0])
            & (y >= self.lo[1]) & (y < self.hi[1])
            & (z >= self.lo[2]) & (z < self.hi[2])
        )
        fx = (x - self.lo[0]) / (self.hi[0] - self.lo[0]) * nx
        fy = (y - self.lo[1]) / (self.hi[1] - self.lo[1]) * ny
        fz = (z - self.lo[2]) / (self.hi[2] - self.lo[2]) * nz
        ix = np.clip(np.floor(fx).astype(np.int64), 0, nx - 1)
        iy = np.clip(np.floor(fy).astype(np.int64), 0, ny - 1)
        iz = np.clip(np.floor(fz).astype(np.int64), 0, nz - 1)
        flat = (ix * ny + iy) * nz + iz
        return flat, inside

    def deposit(
        self,
        grid: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        """Accumulate ``weight`` into ``grid`` at world points, in place.

        Points outside the box are silently dropped (the grid is a window
        onto an infinite slab).  Uses ``np.add.at`` so repeated indices
        accumulate correctly.
        """
        if grid.shape != self.shape:
            raise ValueError(f"grid shape {grid.shape} != spec shape {self.shape}")
        flat, inside = self.world_to_index(x, y, z)
        if not np.any(inside):
            return
        w = np.broadcast_to(np.asarray(weight, dtype=np.float64), flat.shape)
        np.add.at(grid.reshape(-1), flat[inside], w[inside])


@dataclass
class RunningStat:
    """Mergeable running first/second-moment accumulator.

    Supports exact merging across workers (all fields are sums or extrema),
    which is what lets the ``DataManager`` combine pathlength statistics
    from independent tasks without storing per-photon data.
    """

    count: float = 0.0
    weight: float = 0.0
    weighted_sum: float = 0.0
    weighted_sumsq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, values: np.ndarray, weights: np.ndarray | float = 1.0) -> None:
        """Accumulate weighted samples."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        w = np.broadcast_to(np.asarray(weights, dtype=np.float64), values.shape)
        self.count += float(values.size)
        self.weight += float(w.sum())
        self.weighted_sum += float((w * values).sum())
        self.weighted_sumsq += float((w * values * values).sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Exact merge of two accumulators (returns a new one)."""
        return RunningStat(
            count=self.count + other.count,
            weight=self.weight + other.weight,
            weighted_sum=self.weighted_sum + other.weighted_sum,
            weighted_sumsq=self.weighted_sumsq + other.weighted_sumsq,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        """Weighted mean (NaN when empty)."""
        return self.weighted_sum / self.weight if self.weight > 0 else math.nan

    @property
    def variance(self) -> float:
        """Weighted population variance (NaN when empty)."""
        if self.weight <= 0:
            return math.nan
        m = self.mean
        return max(0.0, self.weighted_sumsq / self.weight - m * m)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating sqrt


@dataclass
class Histogram:
    """Fixed-bin weighted histogram, mergeable by addition.

    Used for the gated differential-pathlength distributions: bin edges are
    decided up front (from the gate window), every worker fills the same
    bins, and merging is element-wise addition.
    """

    edges: np.ndarray
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("edges must be a 1-D array with >= 2 entries")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if self.counts is None:
            self.counts = np.zeros(self.edges.size - 1, dtype=np.float64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.float64)
            if self.counts.shape != (self.edges.size - 1,):
                raise ValueError("counts shape does not match edges")

    @classmethod
    def linear(cls, lo: float, hi: float, n_bins: int) -> "Histogram":
        if n_bins <= 0:
            raise ValueError(f"n_bins must be > 0, got {n_bins}")
        if hi <= lo:
            raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
        return cls(edges=np.linspace(lo, hi, n_bins + 1))

    def add(self, values: np.ndarray, weights: np.ndarray | float = 1.0) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        w = np.broadcast_to(np.asarray(weights, dtype=np.float64), values.shape)
        binned, _ = np.histogram(values, bins=self.edges, weights=w)
        self.counts += binned

    def merge(self, other: "Histogram") -> "Histogram":
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge histograms with different bin edges")
        return Histogram(edges=self.edges, counts=self.counts + other.counts)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def centres(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])


#: Column name -> dtype of one detection-event row.  ``layer_paths`` is 2-D
#: (rows × n_layers); everything else is 1-D.
_PATH_COLUMNS = {
    "layer_paths": np.float64,
    "weight": np.float64,
    "opl": np.float64,
    "max_depth": np.float64,
    "detector": np.int64,
}


class PathRecords:
    """Per-detected-photon path statistics, mergeable across tasks.

    One row per *detection event* (in ``classical`` boundary mode a single
    photon may escape — and be detected — more than once, at decreasing
    weight; each partial escape is its own row):

    ``layer_paths``
        Geometric pathlength travelled in each tissue layer up to the
        detection, in mm — shape ``(rows, n_layers)``.  This is the
        sufficient statistic for exact absorption reweighting
        (``exp(-Σ Δμa_i · L_i)``) and first-order scattering reweighting.
    ``weight``
        The photon packet's weight as scored by the detector (roulette
        boosts and Fresnel splits included).
    ``opl``
        Optical pathlength (Σ n_i · geometric path) at detection, matching
        the quantity the pathlength tally and gate operate on.
    ``max_depth``
        Maximum z reached before detection (the penetration-depth tally's
        per-photon sample).
    ``detector``
        Detector id (0 in the current single-detector geometry; recorded
        so multi-detector layouts extend without a format change).

    Determinism contract
    --------------------
    Rows are appended by a kernel in event order, then **sealed** under the
    producing task's index.  Merging is a key-ordered splice of sealed
    segments (duplicate keys rejected), so the merged row order depends
    only on *which* tasks contributed — never on completion order, operand
    order or tree shape.  That makes records bit-identical across worker
    counts and schedules, exactly like the tallies they ride in.
    """

    __slots__ = ("n_layers", "_segments", "_open")

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ValueError(f"n_layers must be > 0, got {n_layers}")
        self.n_layers = int(n_layers)
        #: Sealed segments: key-sorted list of (key, {column: array}).
        self._segments: list[tuple[int, dict[str, np.ndarray]]] = []
        #: Un-sealed blocks appended by the producing kernel.
        self._open: list[dict[str, np.ndarray]] = []

    # -- producing -----------------------------------------------------------

    def append(
        self,
        layer_paths: np.ndarray,
        weight: np.ndarray | float,
        opl: np.ndarray | float,
        max_depth: np.ndarray | float,
        detector: np.ndarray | int = 0,
    ) -> None:
        """Append one event (1-D ``layer_paths``) or a block (2-D)."""
        lp = np.atleast_2d(np.asarray(layer_paths, dtype=np.float64))
        if lp.shape[1] != self.n_layers:
            raise ValueError(
                f"layer_paths has {lp.shape[1]} layers, expected {self.n_layers}"
            )
        n = lp.shape[0]
        if n == 0:
            return
        block = {
            "layer_paths": np.ascontiguousarray(lp),
            "weight": _column(weight, n, np.float64, "weight"),
            "opl": _column(opl, n, np.float64, "opl"),
            "max_depth": _column(max_depth, n, np.float64, "max_depth"),
            "detector": _column(detector, n, np.int64, "detector"),
        }
        self._open.append(block)

    def seal(self, key: int) -> None:
        """Close the open rows as the segment of task ``key``.

        Every producing kernel run must be sealed exactly once (even when
        it detected nothing) before its records can merge; the key is the
        task index, which is what keeps merged row order canonical.
        """
        key = int(key)
        if any(k == key for k, _ in self._segments):
            raise ValueError(f"segment {key} already sealed")
        if self._open:
            blocks = self._open
            segment = {
                name: np.concatenate([b[name] for b in blocks])
                for name in _PATH_COLUMNS
            }
        else:
            segment = self._empty_segment()
        self._open = []
        self._segments.append((key, segment))
        self._segments.sort(key=lambda item: item[0])

    def _empty_segment(self) -> dict[str, np.ndarray]:
        return {
            "layer_paths": np.empty((0, self.n_layers), dtype=np.float64),
            "weight": np.empty(0, dtype=np.float64),
            "opl": np.empty(0, dtype=np.float64),
            "max_depth": np.empty(0, dtype=np.float64),
            "detector": np.empty(0, dtype=np.int64),
        }

    # -- introspection -------------------------------------------------------

    @property
    def is_sealed(self) -> bool:
        return not self._open

    @property
    def n_rows(self) -> int:
        rows = sum(seg["weight"].size for _, seg in self._segments)
        return rows + sum(b["weight"].size for b in self._open)

    @property
    def segment_keys(self) -> tuple[int, ...]:
        return tuple(k for k, _ in self._segments)

    @property
    def nbytes(self) -> int:
        total = 0
        for _, seg in self._segments:
            total += sum(a.nbytes for a in seg.values())
        for block in self._open:
            total += sum(a.nbytes for a in block.values())
        return total

    def column(self, name: str) -> np.ndarray:
        """One column concatenated over sealed segments in key order."""
        if name not in _PATH_COLUMNS:
            raise KeyError(name)
        self._require_sealed("column access")
        if not self._segments:
            return self._empty_segment()[name]
        return np.concatenate([seg[name] for _, seg in self._segments])

    def _require_sealed(self, action: str) -> None:
        if self._open:
            raise ValueError(
                f"{action} requires sealed records; call seal(task_index) first"
            )

    # -- merging -------------------------------------------------------------

    def merge(self, other: "PathRecords") -> "PathRecords":
        """Key-ordered merge of two sealed record sets (returns a new one)."""
        return self.copy().imerge(other)

    def imerge(self, other: "PathRecords") -> "PathRecords":
        """Merge ``other``'s segments into this one in place; returns self.

        Commutative in effect (segments land in key order regardless of
        operand order), which is what the pairwise reduction tree needs —
        it accumulates into whichever operand it owns.
        """
        if not isinstance(other, PathRecords):
            raise TypeError(f"cannot merge PathRecords with {type(other).__name__}")
        if other.n_layers != self.n_layers:
            raise ValueError(
                f"cannot merge records with {other.n_layers} layers into "
                f"{self.n_layers}"
            )
        self._require_sealed("merge")
        other._require_sealed("merge")
        mine = set(self.segment_keys)
        for key, _ in other._segments:
            if key in mine:
                raise ValueError(
                    f"segment {key} present on both sides (duplicate task result)"
                )
        self._segments.extend(other._segments)
        self._segments.sort(key=lambda item: item[0])
        return self

    def copy(self) -> "PathRecords":
        """Deep copy (independent arrays; open rows carried over)."""
        out = PathRecords(self.n_layers)
        out._segments = [
            (k, {name: a.copy() for name, a in seg.items()})
            for k, seg in self._segments
        ]
        out._open = [
            {name: a.copy() for name, a in block.items()} for block in self._open
        ]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathRecords):
            return NotImplemented
        if self.n_layers != other.n_layers:
            return False
        if self.segment_keys != other.segment_keys:
            return False
        if len(self._open) != len(other._open):
            return False
        pairs = list(zip(self._segments, other._segments))
        pairs += [((None, a), (None, b)) for a, b in zip(self._open, other._open)]
        for (_, mine), (_, theirs) in pairs:
            for name in _PATH_COLUMNS:
                a, b = mine[name], theirs[name]
                if a.shape != b.shape or a.tobytes() != b.tobytes():
                    return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathRecords(n_layers={self.n_layers}, rows={self.n_rows}, "
            f"segments={len(self._segments)})"
        )

    # -- (de)serialisation ---------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to plain arrays for persistence.

        Returns the five columns concatenated in key order plus the
        segmentation itself (``keys``/``lengths``), so
        :meth:`from_arrays` can rebuild an equal :class:`PathRecords` —
        segmentation included, which is what keeps a restored record set
        mergeable and bit-comparable with a live one.
        """
        self._require_sealed("serialisation")
        out = {name: self.column(name) for name in _PATH_COLUMNS}
        out["keys"] = np.asarray(self.segment_keys, dtype=np.int64)
        out["lengths"] = np.asarray(
            [seg["weight"].size for _, seg in self._segments], dtype=np.int64
        )
        return out

    @classmethod
    def from_arrays(cls, n_layers: int, arrays: dict[str, np.ndarray]) -> "PathRecords":
        """Rebuild a sealed record set from :meth:`to_arrays` output."""
        keys = np.asarray(arrays["keys"], dtype=np.int64)
        lengths = np.asarray(arrays["lengths"], dtype=np.int64)
        if keys.shape != lengths.shape or keys.ndim != 1:
            raise ValueError("keys and lengths must be matching 1-D arrays")
        total = int(lengths.sum())
        columns = {}
        for name, dtype in _PATH_COLUMNS.items():
            col = np.asarray(arrays[name], dtype=dtype)
            if col.shape[0] != total:
                raise ValueError(
                    f"column {name!r} has {col.shape[0]} rows, "
                    f"segment lengths sum to {total}"
                )
            columns[name] = col
        out = cls(n_layers)
        offset = 0
        for key, length in zip(keys.tolist(), lengths.tolist()):
            if length < 0:
                raise ValueError(f"negative segment length for key {key}")
            seg = {
                name: np.ascontiguousarray(col[offset:offset + length])
                for name, col in columns.items()
            }
            offset += length
            out._segments.append((int(key), seg))
        out._segments.sort(key=lambda item: item[0])
        seen = out.segment_keys
        if len(set(seen)) != len(seen):
            raise ValueError("duplicate segment keys in serialised records")
        return out


def _column(values, n: int, dtype, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 0:
        arr = np.full(n, arr[()], dtype=dtype)
    if arr.shape != (n,):
        raise ValueError(f"{name} has shape {arr.shape}, expected ({n},)")
    return np.ascontiguousarray(arr)
