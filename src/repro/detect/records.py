"""Result-recording primitives: voxel grids and mergeable running statistics.

The paper's application offers "user defined granularity of results": photon
paths and absorbed energy are accumulated on a regular 3-D voxel grid whose
resolution the user chooses (Fig. 3 uses granularity 50³).  ``GridSpec``
describes such a grid and provides the vectorised world→voxel mapping; the
actual accumulation arrays live in the tallies so they can be merged across
distributed workers by plain addition.

``RunningStat`` is a mergeable first/second-moment accumulator used for the
differential-pathlength and penetration-depth statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["GridSpec", "RunningStat", "Histogram"]


@dataclass(frozen=True)
class GridSpec:
    """A regular 3-D voxel grid over an axis-aligned box.

    Attributes
    ----------
    shape:
        Number of voxels along (x, y, z) — the paper's "granularity".
        Fig. 3 uses (50, 50, 50).
    lo, hi:
        Box corners in mm; ``lo < hi`` component-wise.
    """

    shape: tuple[int, int, int]
    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(s <= 0 for s in self.shape):
            raise ValueError(f"shape must be three positive ints, got {self.shape}")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"need lo < hi component-wise, got lo={self.lo} hi={self.hi}")

    @classmethod
    def cube(cls, granularity: int, half_extent: float, depth: float) -> "GridSpec":
        """Grid of ``granularity``³ voxels centred on the beam axis.

        Covers x, y in [-half_extent, +half_extent] and z in [0, depth] —
        the natural frame for the paper's surface-launched experiments.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be > 0, got {granularity}")
        if half_extent <= 0 or depth <= 0:
            raise ValueError("half_extent and depth must be > 0")
        return cls(
            shape=(granularity, granularity, granularity),
            lo=(-half_extent, -half_extent, 0.0),
            hi=(half_extent, half_extent, depth),
        )

    @classmethod
    def banana_box(
        cls,
        granularity: int,
        spacing: float,
        *,
        margin: float = 2.0,
        depth: float | None = None,
        y_halfwidth: float | None = None,
    ) -> "GridSpec":
        """Grid framing a source-detector pair for Fig. 3 style profiles.

        Covers x in [-margin, spacing + margin] (source at x = 0, detector
        at x = spacing), y in [-y_halfwidth, +y_halfwidth] and z in
        [0, depth].  Defaults scale with the optode spacing: depth equal to
        the spacing + margin (bananas peak near spacing/2), y half-width
        equal to half the spacing.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be > 0, got {granularity}")
        if spacing <= 0:
            raise ValueError(f"spacing must be > 0, got {spacing}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        depth = depth if depth is not None else spacing + margin
        y_half = y_halfwidth if y_halfwidth is not None else max(0.5 * spacing, margin)
        return cls(
            shape=(granularity, granularity, granularity),
            lo=(-margin, -y_half, 0.0),
            hi=(spacing + margin, y_half, depth),
        )

    @property
    def voxel_size(self) -> tuple[float, float, float]:
        """Edge lengths of one voxel (mm)."""
        return tuple(
            (h - l) / s for l, h, s in zip(self.lo, self.hi, self.shape)
        )  # type: ignore[return-value]

    @property
    def voxel_volume(self) -> float:
        """Volume of one voxel (mm³)."""
        dx, dy, dz = self.voxel_size
        return dx * dy * dz

    @property
    def n_voxels(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def zeros(self) -> np.ndarray:
        """A fresh accumulation array for this grid."""
        return np.zeros(self.shape, dtype=np.float64)

    def axis_centres(self, axis: int) -> np.ndarray:
        """Voxel-centre coordinates along ``axis`` (0=x, 1=y, 2=z), in mm."""
        n = self.shape[axis]
        lo = self.lo[axis]
        hi = self.hi[axis]
        edges = np.linspace(lo, hi, n + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    def world_to_index(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map world points to flat voxel indices.

        Returns
        -------
        flat_index:
            int64 array of flattened (C-order) voxel indices; undefined where
            ``inside`` is False.
        inside:
            Boolean mask of points that fall inside the grid box.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        nx, ny, nz = self.shape
        # Insideness is defined on the coordinates themselves (half-open
        # box), then indices are clipped into range: this keeps points an
        # epsilon inside a face from rounding to an out-of-range voxel.
        inside = (
            (x >= self.lo[0]) & (x < self.hi[0])
            & (y >= self.lo[1]) & (y < self.hi[1])
            & (z >= self.lo[2]) & (z < self.hi[2])
        )
        fx = (x - self.lo[0]) / (self.hi[0] - self.lo[0]) * nx
        fy = (y - self.lo[1]) / (self.hi[1] - self.lo[1]) * ny
        fz = (z - self.lo[2]) / (self.hi[2] - self.lo[2]) * nz
        ix = np.clip(np.floor(fx).astype(np.int64), 0, nx - 1)
        iy = np.clip(np.floor(fy).astype(np.int64), 0, ny - 1)
        iz = np.clip(np.floor(fz).astype(np.int64), 0, nz - 1)
        flat = (ix * ny + iy) * nz + iz
        return flat, inside

    def deposit(
        self,
        grid: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        """Accumulate ``weight`` into ``grid`` at world points, in place.

        Points outside the box are silently dropped (the grid is a window
        onto an infinite slab).  Uses ``np.add.at`` so repeated indices
        accumulate correctly.
        """
        if grid.shape != self.shape:
            raise ValueError(f"grid shape {grid.shape} != spec shape {self.shape}")
        flat, inside = self.world_to_index(x, y, z)
        if not np.any(inside):
            return
        w = np.broadcast_to(np.asarray(weight, dtype=np.float64), flat.shape)
        np.add.at(grid.reshape(-1), flat[inside], w[inside])


@dataclass
class RunningStat:
    """Mergeable running first/second-moment accumulator.

    Supports exact merging across workers (all fields are sums or extrema),
    which is what lets the ``DataManager`` combine pathlength statistics
    from independent tasks without storing per-photon data.
    """

    count: float = 0.0
    weight: float = 0.0
    weighted_sum: float = 0.0
    weighted_sumsq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, values: np.ndarray, weights: np.ndarray | float = 1.0) -> None:
        """Accumulate weighted samples."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        w = np.broadcast_to(np.asarray(weights, dtype=np.float64), values.shape)
        self.count += float(values.size)
        self.weight += float(w.sum())
        self.weighted_sum += float((w * values).sum())
        self.weighted_sumsq += float((w * values * values).sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Exact merge of two accumulators (returns a new one)."""
        return RunningStat(
            count=self.count + other.count,
            weight=self.weight + other.weight,
            weighted_sum=self.weighted_sum + other.weighted_sum,
            weighted_sumsq=self.weighted_sumsq + other.weighted_sumsq,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        """Weighted mean (NaN when empty)."""
        return self.weighted_sum / self.weight if self.weight > 0 else math.nan

    @property
    def variance(self) -> float:
        """Weighted population variance (NaN when empty)."""
        if self.weight <= 0:
            return math.nan
        m = self.mean
        return max(0.0, self.weighted_sumsq / self.weight - m * m)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating sqrt


@dataclass
class Histogram:
    """Fixed-bin weighted histogram, mergeable by addition.

    Used for the gated differential-pathlength distributions: bin edges are
    decided up front (from the gate window), every worker fills the same
    bins, and merging is element-wise addition.
    """

    edges: np.ndarray
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("edges must be a 1-D array with >= 2 entries")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if self.counts is None:
            self.counts = np.zeros(self.edges.size - 1, dtype=np.float64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.float64)
            if self.counts.shape != (self.edges.size - 1,):
                raise ValueError("counts shape does not match edges")

    @classmethod
    def linear(cls, lo: float, hi: float, n_bins: int) -> "Histogram":
        if n_bins <= 0:
            raise ValueError(f"n_bins must be > 0, got {n_bins}")
        if hi <= lo:
            raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
        return cls(edges=np.linspace(lo, hi, n_bins + 1))

    def add(self, values: np.ndarray, weights: np.ndarray | float = 1.0) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        w = np.broadcast_to(np.asarray(weights, dtype=np.float64), values.shape)
        binned, _ = np.histogram(values, bins=self.edges, weights=w)
        self.counts += binned

    def merge(self, other: "Histogram") -> "Histogram":
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge histograms with different bin edges")
        return Histogram(edges=self.edges, counts=self.counts + other.counts)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def centres(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])
