"""Voxelised heterogeneous tissue media and their transport kernel.

Importing this package registers the ``"voxel"`` kernel with
:mod:`repro.core.simulation`, so voxel experiments run through the same
``Simulation``/``DataManager`` entry points as layered ones:

>>> from repro.voxel import VoxelConfig, homogeneous_block, run_voxel
>>> # ... build a medium, then:
>>> # tally = run_voxel(config, n_photons=10_000, seed=0)
"""

from __future__ import annotations

import numpy as np

from ..core import simulation as _simulation
from ..core.reduce import reduce_all
from ..core.rng import task_rng
from ..core.tally import Tally
from .builders import (
    from_layers,
    homogeneous_block,
    tilted_layers,
    with_cylinder,
    with_sphere,
)
from .config import VoxelConfig
from .kernel import run_voxel_batch
from .medium import VoxelMedium

__all__ = [
    "VoxelConfig",
    "VoxelMedium",
    "from_layers",
    "homogeneous_block",
    "run_voxel",
    "run_voxel_batch",
    "tilted_layers",
    "with_cylinder",
    "with_sphere",
]

# Register the voxel kernel so run_photons(config, ..., kernel="voxel") and
# therefore TaskSpec(kernel="voxel") work.  Worker processes that unpickle a
# VoxelConfig import this package and get the registration for free.
_simulation._KERNELS.setdefault("voxel", run_voxel_batch)


def run_voxel(
    config: VoxelConfig,
    n_photons: int,
    seed: int = 0,
    *,
    task_size: int | None = None,
) -> Tally:
    """Single-process voxel simulation (mirrors ``Simulation.run``)."""
    if task_size is None:
        task_size = max(n_photons, 1)
    tallies = [
        run_voxel_batch(config, count, task_rng(seed, i))
        for i, count in enumerate(_simulation.split_photons(n_photons, task_size))
    ]
    if not tallies:
        return Tally(n_layers=config.medium.n_materials, records=config.records)
    # Same canonical pairwise tree as Simulation/DataManager, so voxel runs
    # keep the serial == distributed bit-identity contract.
    return reduce_all(tallies, owned=True)
