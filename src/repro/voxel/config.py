"""Configuration for voxel-medium simulations.

``VoxelConfig`` mirrors :class:`repro.core.config.SimulationConfig` with a
:class:`~repro.voxel.medium.VoxelMedium` in place of the layer stack, and
exposes the small config surface the distributed platform touches
(``records`` and a ``stack``-like sized object), so voxel experiments run
through the same ``DataManager``/worker machinery by selecting the
``"voxel"`` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.config import RecordConfig
from ..core.roulette import RouletteConfig
from ..detect.detector import AcceptAll, Detector
from ..detect.gating import PathlengthGate, TimeGate
from ..sources.base import Source
from .medium import VoxelMedium

__all__ = ["VoxelConfig"]


@dataclass(frozen=True)
class VoxelConfig:
    """Full description of one voxel-medium Monte Carlo experiment.

    The boundary treatment is probabilistic (MCML style); interior voxel
    faces are index-matched by construction of :class:`VoxelMedium`, so the
    classical/probabilistic distinction only ever concerned the external
    faces and the probabilistic rule is used there.
    """

    medium: VoxelMedium
    source: Source
    detector: Detector = field(default_factory=AcceptAll)
    gate: PathlengthGate | TimeGate | None = None
    roulette: RouletteConfig = field(default_factory=RouletteConfig)
    max_steps: int = 1_000_000
    records: RecordConfig = field(default_factory=RecordConfig)

    def __post_init__(self) -> None:
        if self.max_steps <= 0:
            raise ValueError(f"max_steps must be > 0, got {self.max_steps}")

    @property
    def stack(self):
        """Material table, sized like a layer stack.

        The distributed platform only ever asks ``len(config.stack)`` (to
        shape an empty tally); for a voxel medium the per-"layer"
        absorption slots are per-*material* slots.
        """
        return self.medium.materials

    def pathlength_gate(self) -> PathlengthGate | None:
        """The gate normalised to optical pathlength (TimeGate converted)."""
        if self.gate is None:
            return None
        if isinstance(self.gate, TimeGate):
            return self.gate.to_pathlength_gate()
        return self.gate

    def with_(self, **changes) -> "VoxelConfig":
        """Functional update (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)
