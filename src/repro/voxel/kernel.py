"""Vectorised transport kernel for voxelised heterogeneous media.

The same hop-drop-spin Monte Carlo as :mod:`repro.core.vkernel`, with the
layer-boundary logic replaced by voxel-face traversal: a photon's
dimensionless step is spent voxel by voxel, re-scaled by each voxel's µt
(the standard multi-region treatment), and scattering draws per-voxel
anisotropy.  External top/bottom faces apply Fresnel reflection against the
ambient medium; interior faces are index-matched by construction of
:class:`~repro.voxel.medium.VoxelMedium`.

Validated against the analytic layered kernel on voxelised layer stacks
(``tests/voxel/test_voxel_kernel.py``) — same reflectance, absorption and
transmission within Monte Carlo statistics.
"""

from __future__ import annotations

import numpy as np

from ..core.fresnel import fresnel_reflectance
from ..core.sampling import rotate_direction, sample_hg_cosine
from ..core.tally import Tally
from ..core.vkernel import _PathEvents
from .config import VoxelConfig

__all__ = ["run_voxel_batch", "DEFAULT_SUB_BATCH"]

DEFAULT_SUB_BATCH = 32768

#: Fraction of a voxel edge used to nudge face-crossing photons into the
#: next voxel (avoids floor() landing them back on the face).
_NUDGE = 1e-9

#: Compact path-event buffers every this many loop iterations.
_COMPACT_EVERY = 256

_DEAD_FRACTION = 0.25


def run_voxel_batch(
    config: VoxelConfig,
    n_photons: int,
    rng: np.random.Generator,
    *,
    sub_batch: int = DEFAULT_SUB_BATCH,
    telemetry=None,
) -> Tally:
    """Trace ``n_photons`` photons through a voxel medium.

    ``telemetry`` (optional :class:`~repro.observe.Telemetry`) traces one
    ``kernel.batch`` span per sub-batch; ``None`` costs one comparison.
    """
    if n_photons < 0:
        raise ValueError(f"n_photons must be >= 0, got {n_photons}")
    if sub_batch <= 0:
        raise ValueError(f"sub_batch must be > 0, got {sub_batch}")
    tally = Tally(n_layers=config.medium.n_materials, records=config.records)
    done = 0
    while done < n_photons:
        n = min(sub_batch, n_photons - done)
        if telemetry is None:
            _run_sub_batch(config, tally, n, rng)
        else:
            with telemetry.span("kernel.batch", kernel="voxel", photons=n):
                _run_sub_batch(config, tally, n, rng)
            telemetry.count("kernel.photons", n, kernel="voxel")
        done += n
    return tally


def _run_sub_batch(
    config: VoxelConfig, tally: Tally, n: int, rng: np.random.Generator
) -> None:
    medium = config.medium
    gate = config.pathlength_gate()
    record_path = tally.path_grid is not None
    coeffs = medium.coefficient_vectors()
    mu_a_vec, mu_t_vec, g_vec = coeffs["mu_a"], coeffs["mu_t"], coeffs["g"]
    hx, hy, hz = medium.voxel_size
    lo_x = -medium.half_extent
    lo_y = -medium.half_extent
    depth = medium.depth
    n_med = medium.n_medium
    nudge = _NUDGE * min(hx, hy, hz)

    # --- initialise photons ---------------------------------------------------
    pos, dirs = config.source.sample(n, rng)
    x = pos[:, 0].copy()
    y = pos[:, 1].copy()
    z = pos[:, 2].copy()
    ux = dirs[:, 0].copy()
    uy = dirs[:, 1].copy()
    uz = dirs[:, 2].copy()
    w = np.ones(n)
    alive = np.ones(n, dtype=bool)
    opl = np.zeros(n)
    maxz = z.copy()
    s_dim = np.zeros(n)
    gid = np.arange(n, dtype=np.int64)

    surface_launch = (z == 0.0) & (uz > 0.0)
    if surface_launch.any():
        # Angle-dependent Fresnel (specular) loss + Snell refraction of the
        # entry direction; see repro.core.vkernel._launch_through_surface.
        cos_i = uz[surface_launch]
        r_sp = fresnel_reflectance(cos_i, medium.n_above, n_med)
        tally.specular_weight += float(r_sp.sum())
        w[surface_launch] -= r_sp
        if medium.n_above != n_med:
            ratio = medium.n_above / n_med
            sin_t2 = ratio * ratio * (1.0 - cos_i * cos_i)
            cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin_t2))
            ux[surface_launch] *= ratio
            uy[surface_launch] *= ratio
            uz[surface_launch] = cos_t
            norm = np.sqrt(
                ux[surface_launch] ** 2 + uy[surface_launch] ** 2
                + uz[surface_launch] ** 2
            )
            ux[surface_launch] /= norm
            uy[surface_launch] /= norm
            uz[surface_launch] /= norm
        # Nudge surface launches just inside the box so voxel lookup works.
        z[surface_launch] = nudge

    bad_depth = (z < 0.0) | (z >= depth)
    if bad_depth.any() and not surface_launch[bad_depth].all():
        raise ValueError("source launches photons outside the voxel box")

    tally.n_launched += n
    detected_flag = np.zeros(n, dtype=bool)
    events = _PathEvents(config.records.path_grid) if record_path else None
    if record_path:
        events.append(gid, x, y, z, w)

    def squeeze(keep: np.ndarray) -> None:
        nonlocal x, y, z, ux, uy, uz, w, alive, opl, maxz, s_dim, gid
        x, y, z = x[keep], y[keep], z[keep]
        ux, uy, uz = ux[keep], uy[keep], uz[keep]
        w, alive, opl = w[keep], alive[keep], opl[keep]
        maxz, s_dim, gid = maxz[keep], s_dim[keep], gid[keep]

    iteration = 0
    while x.size:
        iteration += 1
        if iteration > config.max_steps:
            tally.lost_weight += float(w[alive].sum())
            tally.record_penetration(maxz[alive])
            break

        # Material of the current voxel (lateral clamping inside the lookup).
        ixl, iyl, izl = medium.voxel_indices(x, y, z)
        mat = medium.labels[ixl, iyl, izl]
        mu_t = mu_t_vec[mat]

        need = s_dim <= 0.0
        n_need = int(np.count_nonzero(need))
        if n_need:
            s_dim[need] = -np.log(1.0 - rng.random(n_need))

        with np.errstate(divide="ignore"):
            d_int = np.where(mu_t > 0.0, s_dim / np.maximum(mu_t, 1e-300), np.inf)

        # Distance to the next voxel face along each axis (unclamped index,
        # so photons in the lateral extension traverse virtual edge voxels).
        d_face = np.full(x.size, np.inf)
        for p, u, lo, h in ((x, ux, lo_x, hx), (y, uy, lo_y, hy), (z, uz, 0.0, hz)):
            moving = u != 0.0
            i = np.floor((p[moving] - lo) / h)
            plane = lo + (i + (u[moving] > 0.0)) * h
            d = (plane - p[moving]) / u[moving]
            np.maximum(d, 0.0, out=d)
            d_face[moving] = np.minimum(d_face[moving], d)

        hit_face = d_face <= d_int
        d = np.where(hit_face, d_face, d_int)

        runaway = np.isinf(d)
        if runaway.any():
            tally.lost_weight += float(w[runaway].sum())
            tally.record_penetration(maxz[runaway])
            alive[runaway] = False
            w[runaway] = 0.0
            d[runaway] = 0.0
            hit_face[runaway] = False

        # --- move -------------------------------------------------------------
        x += ux * d
        y += uy * d
        z += uz * d
        opl += n_med * d
        np.maximum(maxz, z, out=maxz)
        s_dim -= d * mu_t
        s_dim[~hit_face] = 0.0
        np.maximum(s_dim, 0.0, out=s_dim)

        hit_face &= alive
        interact = (hit_face != alive)  # alive & ~hit_face

        # --- face crossings ------------------------------------------------------
        if hit_face.any():
            fi = np.flatnonzero(hit_face)
            fz = z[fi]
            fuz = uz[fi]
            at_top = (np.abs(fz) <= 2 * nudge) & (fuz < 0.0)
            at_bottom = (np.abs(fz - depth) <= 2 * nudge) & (fuz > 0.0)
            external = at_top | at_bottom
            if external.any():
                _handle_external(
                    config, tally, rng, gate, detected_flag,
                    x, y, z, uz, w, opl, maxz, alive, gid,
                    fi[external], at_top[external], n_med, nudge, depth,
                )
            interior = fi[~external]
            if interior.size:
                # Nudge into the next voxel; material re-gathered next turn.
                x[interior] += ux[interior] * nudge
                y[interior] += uy[interior] * nudge
                z[interior] += uz[interior] * nudge

        # --- interactions ----------------------------------------------------------
        if interact.any():
            ii = np.flatnonzero(interact)
            lay = mat[ii]
            mu_a_i = mu_a_vec[lay]
            mu_t_i = mu_t_vec[lay]
            absorbed = np.where(
                mu_t_i > 0.0, w[ii] * mu_a_i / np.maximum(mu_t_i, 1e-300), 0.0
            )
            tally.absorbed_by_layer += np.bincount(
                lay, weights=absorbed, minlength=tally.absorbed_by_layer.size
            )
            if tally.absorption_grid is not None:
                config.records.absorption_grid.deposit(
                    tally.absorption_grid, x[ii], y[ii], z[ii], absorbed
                )
            w[ii] -= absorbed
            if events is not None:
                events.append(gid[ii], x[ii], y[ii], z[ii], w[ii])

            cos_theta = sample_hg_cosine(g_vec[lay], rng, ii.size)
            psi = rng.uniform(0.0, 2.0 * np.pi, ii.size)
            nux, nuy, nuz = rotate_direction(ux[ii], uy[ii], uz[ii], cos_theta, psi)
            ux[ii] = nux
            uy[ii] = nuy
            uz[ii] = nuz

            small = w[ii] < config.roulette.threshold
            if small.any():
                cand = ii[small]
                survive = rng.random(cand.size) < (1.0 / config.roulette.boost)
                winners = cand[survive]
                losers = cand[~survive]
                if winners.size:
                    boost = config.roulette.boost
                    tally.roulette_net_weight += float(w[winners].sum()) * (boost - 1.0)
                    w[winners] *= boost
                if losers.size:
                    tally.roulette_net_weight -= float(w[losers].sum())
                    w[losers] = 0.0
                    alive[losers] = False
                    tally.record_penetration(maxz[losers])

        if record_path and iteration % _COMPACT_EVERY == 0:
            alive_by_gid = np.zeros(n, dtype=bool)
            alive_by_gid[gid[alive]] = True
            events.compact(alive_by_gid, detected_flag, tally.path_grid)
            detected_flag[:] = False

        n_dead = x.size - int(np.count_nonzero(alive))
        if n_dead and n_dead >= x.size * _DEAD_FRACTION:
            squeeze(alive)

    if record_path:
        events.compact(np.zeros(n, dtype=bool), detected_flag, tally.path_grid)


def _handle_external(
    config, tally, rng, gate, detected_flag,
    x, y, z, uz, w, opl, maxz, alive, gid,
    ei, top_mask, n_med, nudge, depth,
) -> None:
    """Fresnel test at the external faces; score escapes, reflect the rest."""
    n_out = np.where(top_mask, config.medium.n_above, config.medium.n_below)
    cos_i = np.abs(uz[ei])
    r_f = fresnel_reflectance(cos_i, n_med, n_out)
    reflect = rng.random(ei.size) < r_f

    ri = ei[reflect]
    if ri.size:
        uz[ri] = -uz[ri]
        # Nudge back inside so the next voxel lookup is interior.
        z[ri] += np.where(top_mask[reflect], nudge, -nudge)

    out = ~reflect
    if not out.any():
        return
    oi = ei[out]
    top_out = top_mask[out]
    ew = w[oi]

    tally.record_penetration(maxz[oi])

    down = ~top_out
    if down.any():
        tally.transmittance_weight += float(ew[down].sum())
    if top_out.any():
        ti = oi[top_out]
        tw = ew[top_out]
        tally.diffuse_reflectance_weight += float(tw.sum())
        if tally.reflectance_rho_hist is not None:
            tally.reflectance_rho_hist.add(np.hypot(x[ti], y[ti]), tw)
        accepted = config.detector.accepts(x[ti], y[ti], uz[ti])
        if gate is not None:
            accepted &= gate.accepts(opl[ti])
        if accepted.any():
            tally.detected_count += int(accepted.sum())
            tally.detected_weight += float(tw[accepted].sum())
            tally.pathlength.add(opl[ti][accepted], tw[accepted])
            tally.penetration_depth.add(maxz[ti][accepted], tw[accepted])
            if tally.pathlength_hist is not None:
                tally.pathlength_hist.add(opl[ti][accepted], tw[accepted])
            detected_flag[gid[ti][accepted]] = True

    alive[oi] = False
    w[oi] = 0.0
