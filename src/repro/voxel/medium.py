"""Voxelised heterogeneous tissue media.

The paper (§2): the Monte Carlo method "can be applied to an inhomogeneous
medium of complex geometry once a realistic model of the tissue sample has
been developed."  The plane-layer stacks of :mod:`repro.tissue` cover the
Table 1 experiments; this package adds the general case — a 3-D voxel grid
of material labels with a material table of optical properties, the
representation MCX/tMCimg-class codes use for anatomical head models.

Geometry conventions
--------------------
* The voxel box spans ``x, y in [-half_extent, +half_extent]`` and
  ``z in [0, depth]``; the illuminated surface is z = 0.
* The medium is *laterally unbounded*: outside the box in x/y the material
  of the nearest edge voxel continues, so photons never "fall off" the
  side of the model (matching the infinite-slab convention of
  :class:`repro.tissue.LayerStack`).
* Photons escape only through the top (z < 0) and bottom (z > depth)
  faces, with Fresnel reflection/refraction against the ambient index.
* All materials must share one refractive index: interior voxel faces are
  index-matched (true for every Table 1 tissue, all n = 1.4).  Mismatched
  interior indices would require per-face Fresnel events, which the
  layered kernel already provides for stratified media.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tissue.optical import AMBIENT_REFRACTIVE_INDEX, OpticalProperties

__all__ = ["VoxelMedium"]


@dataclass(frozen=True)
class VoxelMedium:
    """A rectilinear grid of material labels plus a material table.

    Attributes
    ----------
    labels:
        ``(nx, ny, nz)`` integer array of material indices.
    materials:
        Material table; ``labels`` values index into it.
    half_extent:
        Lateral half-size of the box in mm.
    depth:
        Box depth in mm (z spans [0, depth]).
    n_above, n_below:
        Ambient refractive indices outside the top/bottom faces.
    """

    labels: np.ndarray
    materials: tuple[OpticalProperties, ...]
    half_extent: float
    depth: float
    n_above: float = AMBIENT_REFRACTIVE_INDEX
    n_below: float = AMBIENT_REFRACTIVE_INDEX

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels)
        if labels.ndim != 3:
            raise ValueError(f"labels must be 3-D, got shape {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise ValueError(f"labels must be integers, got {labels.dtype}")
        materials = tuple(self.materials)
        if not materials:
            raise ValueError("need at least one material")
        if labels.min() < 0 or labels.max() >= len(materials):
            raise ValueError(
                f"labels must index materials [0, {len(materials)}), "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        if self.half_extent <= 0 or self.depth <= 0:
            raise ValueError("half_extent and depth must be > 0")
        n_values = {m.n for m in materials}
        if len(n_values) != 1:
            raise ValueError(
                "all materials must share one refractive index "
                f"(interior voxel faces are index-matched); got {sorted(n_values)}"
            )
        if self.n_above <= 0 or self.n_below <= 0:
            raise ValueError("ambient refractive indices must be > 0")
        object.__setattr__(self, "labels", np.ascontiguousarray(labels))
        object.__setattr__(self, "materials", materials)

    # -- derived -----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.labels.shape  # type: ignore[return-value]

    @property
    def n_materials(self) -> int:
        return len(self.materials)

    @property
    def n_medium(self) -> float:
        """The (shared) refractive index of the medium."""
        return self.materials[0].n

    @property
    def lo(self) -> tuple[float, float, float]:
        return (-self.half_extent, -self.half_extent, 0.0)

    @property
    def hi(self) -> tuple[float, float, float]:
        return (self.half_extent, self.half_extent, self.depth)

    @property
    def voxel_size(self) -> tuple[float, float, float]:
        nx, ny, nz = self.shape
        return (
            2.0 * self.half_extent / nx,
            2.0 * self.half_extent / ny,
            self.depth / nz,
        )

    def coefficient_vectors(self) -> dict[str, np.ndarray]:
        """Per-material coefficient arrays for the kernel (gather tables)."""
        return {
            "mu_a": np.asarray([m.mu_a for m in self.materials]),
            "mu_s": np.asarray([m.mu_s for m in self.materials]),
            "mu_t": np.asarray([m.mu_t for m in self.materials]),
            "g": np.asarray([m.g for m in self.materials]),
        }

    def label_at(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Material labels at world points (lateral clamping, z must be in box)."""
        ix, iy, iz = self.voxel_indices(x, y, z)
        return self.labels[ix, iy, iz]

    def voxel_indices(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Clamped voxel indices of world points.

        Lateral coordinates clamp to the edge voxels (the lateral-extension
        convention); depths clamp into [0, nz-1], callers are responsible
        for handling escape through the z faces before lookup.
        """
        nx, ny, nz = self.shape
        hx, hy, hz = self.voxel_size
        ix = np.clip(((np.asarray(x) + self.half_extent) / hx).astype(np.int64), 0, nx - 1)
        iy = np.clip(((np.asarray(y) + self.half_extent) / hy).astype(np.int64), 0, ny - 1)
        iz = np.clip((np.asarray(z) / hz).astype(np.int64), 0, nz - 1)
        return ix, iy, iz

    def material_volume_fractions(self) -> np.ndarray:
        """Fraction of the box volume occupied by each material."""
        counts = np.bincount(self.labels.reshape(-1), minlength=self.n_materials)
        return counts / self.labels.size
