"""Builders for voxelised tissue models.

Constructors for the heterogeneous geometries a calibration study needs:
voxelised versions of the plane-layer models (for cross-validation against
the analytic-layer kernel), embedded spherical/cylindrical inclusions
(tumours, blood vessels), and tilted-layer wedges (sloping anatomy).
"""

from __future__ import annotations

import math

import numpy as np

from ..tissue.layer import LayerStack
from ..tissue.optical import OpticalProperties
from .medium import VoxelMedium

__all__ = [
    "from_layers",
    "homogeneous_block",
    "with_sphere",
    "with_cylinder",
    "tilted_layers",
]


def _centres(medium_shape: tuple[int, int, int], half_extent: float, depth: float):
    nx, ny, nz = medium_shape
    x = np.linspace(-half_extent, half_extent, nx, endpoint=False) + half_extent / nx
    y = np.linspace(-half_extent, half_extent, ny, endpoint=False) + half_extent / ny
    z = np.linspace(0.0, depth, nz, endpoint=False) + 0.5 * depth / nz
    return x, y, z


def homogeneous_block(
    props: OpticalProperties,
    shape: tuple[int, int, int],
    half_extent: float,
    depth: float,
) -> VoxelMedium:
    """A single-material voxel block."""
    return VoxelMedium(
        labels=np.zeros(shape, dtype=np.uint16),
        materials=(props,),
        half_extent=half_extent,
        depth=depth,
    )


def from_layers(
    stack: LayerStack,
    shape: tuple[int, int, int],
    half_extent: float,
    depth: float | None = None,
) -> VoxelMedium:
    """Voxelise a plane-layer stack.

    The deepest (possibly semi-infinite) layer fills every voxel below the
    last interior boundary.  ``depth`` defaults to the stack thickness for
    finite stacks and must be given for semi-infinite ones.

    The result lets the voxel kernel be validated against the analytic
    layered kernel on identical physics
    (``tests/voxel/test_voxel_kernel.py``).
    """
    if depth is None:
        if stack.is_semi_infinite:
            raise ValueError("depth is required to voxelise a semi-infinite stack")
        depth = stack.total_thickness
    nx, ny, nz = shape
    _x, _y, z = _centres(shape, half_extent, depth)
    # searchsorted over the interior boundaries gives each voxel's layer.
    boundaries = stack.boundaries
    layer_of_z = np.minimum(
        np.searchsorted(boundaries, z, side="right") - 1, len(stack) - 1
    ).astype(np.uint16)
    labels = np.broadcast_to(layer_of_z[None, None, :], shape).copy()
    return VoxelMedium(
        labels=labels,
        materials=tuple(l.properties for l in stack),
        half_extent=half_extent,
        depth=depth,
        n_above=stack.n_above,
        n_below=stack.n_below,
    )


def with_sphere(
    medium: VoxelMedium,
    centre: tuple[float, float, float],
    radius: float,
    props: OpticalProperties,
) -> VoxelMedium:
    """Return a copy of ``medium`` with a spherical inclusion.

    Voxels whose centres fall inside the sphere get a new material label
    for ``props`` (appended to the material table).  Models a localised
    absorber — e.g. a haematoma or tumour in an optical-imaging phantom.
    """
    if radius <= 0:
        raise ValueError(f"radius must be > 0, got {radius}")
    x, y, z = _centres(medium.shape, medium.half_extent, medium.depth)
    cx, cy, cz = centre
    dist2 = (
        (x[:, None, None] - cx) ** 2
        + (y[None, :, None] - cy) ** 2
        + (z[None, None, :] - cz) ** 2
    )
    inside = dist2 <= radius * radius
    if not inside.any():
        raise ValueError("sphere does not overlap any voxel centre")
    labels = medium.labels.copy()
    labels[inside] = medium.n_materials
    return VoxelMedium(
        labels=labels,
        materials=medium.materials + (props,),
        half_extent=medium.half_extent,
        depth=medium.depth,
        n_above=medium.n_above,
        n_below=medium.n_below,
    )


def with_cylinder(
    medium: VoxelMedium,
    y0: float,
    z0: float,
    radius: float,
    props: OpticalProperties,
) -> VoxelMedium:
    """Add an x-axis-aligned cylindrical inclusion (a blood vessel).

    The cylinder runs the full lateral extent along x at lateral position
    ``y0`` and depth ``z0``.
    """
    if radius <= 0:
        raise ValueError(f"radius must be > 0, got {radius}")
    _x, y, z = _centres(medium.shape, medium.half_extent, medium.depth)
    dist2 = (y[:, None] - y0) ** 2 + (z[None, :] - z0) ** 2
    inside = dist2 <= radius * radius  # (ny, nz)
    if not inside.any():
        raise ValueError("cylinder does not overlap any voxel centre")
    labels = medium.labels.copy()
    labels[:, inside] = medium.n_materials
    return VoxelMedium(
        labels=labels,
        materials=medium.materials + (props,),
        half_extent=medium.half_extent,
        depth=medium.depth,
        n_above=medium.n_above,
        n_below=medium.n_below,
    )


def tilted_layers(
    stack: LayerStack,
    shape: tuple[int, int, int],
    half_extent: float,
    depth: float,
    slope: float,
) -> VoxelMedium:
    """Voxelise a stack whose interfaces tilt along x.

    Each interface plane is ``z = boundary + slope * x`` — a wedge model of
    sloping anatomy (e.g. skull thickening away from the midline).  With
    ``slope = 0`` this reduces to :func:`from_layers`.
    """
    x, _y, z = _centres(shape, half_extent, depth)
    boundaries = stack.boundaries[1:-1]  # interior boundaries only
    # For each (x, z) pair count how many tilted interfaces lie above z.
    local_z = z[None, :] - slope * x[:, None]  # (nx, nz)
    layer_of = np.zeros_like(local_z, dtype=np.uint16)
    for b in boundaries:
        layer_of += (local_z >= b).astype(np.uint16)
    layer_of = np.minimum(layer_of, len(stack) - 1)
    labels = np.broadcast_to(layer_of[:, None, :], shape).copy()
    return VoxelMedium(
        labels=labels,
        materials=tuple(l.properties for l in stack),
        half_extent=half_extent,
        depth=depth,
        n_above=stack.n_above,
        n_below=stack.n_below,
    )
