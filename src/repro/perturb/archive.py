"""Archive-level derivation: reweight a saved run without re-simulating.

The on-disk counterpart of :func:`repro.perturb.reweight.derive_tally`:
load a parent archive written by ``save_tally`` (with path records), apply
a perturbation, return the derived tally.  **Fails closed**: an archive
without path records raises :class:`PerturbationError` — the caller
decides whether to re-simulate; this module never does it silently.
"""

from __future__ import annotations

from pathlib import Path

from ..core.tally import Tally
from .reweight import PerturbationDelta, PerturbationError, derive_tally

__all__ = ["derive_from_archive"]


def derive_from_archive(
    path: "str | Path",
    delta: PerturbationDelta,
    *,
    mu_s=None,
    expected_fingerprint: "str | None" = None,
) -> Tally:
    """Derive a perturbed tally from the archive at ``path``.

    ``mu_s`` (the parent's per-layer scattering coefficients) is required
    only for scattering perturbations; when omitted there, it is read from
    the archive provenance (``coefficients.mu_s``) if present.
    ``expected_fingerprint`` self-verifies the archive against the parent
    request that claims it, exactly like ``load_tally``.

    Raises :class:`PerturbationError` when the archive carries no path
    records — derivation never silently falls back to simulation.
    """
    from ..io.results import load_paths, load_tally

    parent = load_tally(path, expected_fingerprint=expected_fingerprint)
    parent.paths = load_paths(path, expected_fingerprint=expected_fingerprint)
    if parent.paths is None:
        raise PerturbationError(
            f"archive {path} carries no path records; the parent run must "
            "be executed with capture_paths=True before it can seed a "
            "derivation"
        )
    if mu_s is None and not delta.is_exact:
        coeffs = (parent.provenance or {}).get("coefficients") or {}
        mu_s = coeffs.get("mu_s")
    derived = derive_tally(parent, delta, mu_s=mu_s)
    derived.derivation["parent_fingerprint"] = (
        (parent.provenance or {}).get("fingerprint")
    )
    return derived
