"""Reweighting kernels: per-photon factors and derived tallies.

Everything here is pure NumPy over sealed
:class:`~repro.detect.records.PathRecords` — no RNG, no simulation.  A
derivation is deterministic: the same parent records and delta always
produce the bit-identical derived tally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.tally import Tally
from ..detect.records import PathRecords, RunningStat

__all__ = [
    "DERIVED_FIELDS",
    "PARENT_VALUED_FIELDS",
    "PerturbationDelta",
    "PerturbationError",
    "derive_tally",
    "derived_std",
    "reweight_factors",
]

#: Tally fields a derivation actually recomputes — the detected-photon
#: estimators, for which the recorded paths are a sufficient statistic.
DERIVED_FIELDS = (
    "detected_weight",
    "pathlength",
    "penetration_depth",
    "pathlength_hist",
    "paths",
)

#: Tally fields a derived tally carries over *unchanged from the parent*.
#: They describe the whole photon ensemble (absorbed energy, escape
#: weights, grids), not just the detected sub-ensemble the records cover;
#: deriving them would need per-collision data no record row stores.  A
#: derived tally flags this in its provenance
#: (``perturbation.fields_at_parent_properties``) so downstream readers of
#: e.g. ``absorbed_by_layer`` know those numbers belong to the parent's
#: optical properties.
PARENT_VALUED_FIELDS = (
    "specular_weight",
    "diffuse_reflectance_weight",
    "transmittance_weight",
    "absorbed_by_layer",
    "lost_weight",
    "roulette_net_weight",
    "absorption_grid",
    "path_grid",
    "reflectance_rho_hist",
    "penetration_hist",
)


class PerturbationError(ValueError):
    """A derivation cannot be performed from the given parent material."""


@dataclass(frozen=True)
class PerturbationDelta:
    """A per-layer optical-property perturbation.

    ``d_mu_a[i]`` is the *additive* absorption change of layer ``i`` (in
    1/mm, the unit μa is specified in); ``alpha_s[i]`` is the
    *multiplicative* scattering scale (``μs' = α·μs``).  The identity
    delta is ``d_mu_a == 0`` and ``alpha_s == 1`` everywhere.
    """

    d_mu_a: tuple[float, ...]
    alpha_s: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "d_mu_a", tuple(float(v) for v in self.d_mu_a)
        )
        object.__setattr__(
            self, "alpha_s", tuple(float(v) for v in self.alpha_s)
        )
        if len(self.d_mu_a) != len(self.alpha_s):
            raise ValueError(
                f"d_mu_a has {len(self.d_mu_a)} layers, "
                f"alpha_s has {len(self.alpha_s)}"
            )
        if not self.d_mu_a:
            raise ValueError("a perturbation needs at least one layer")
        for v in self.d_mu_a:
            if not math.isfinite(v):
                raise ValueError(f"non-finite d_mu_a entry {v!r}")
        for a in self.alpha_s:
            if not math.isfinite(a) or a <= 0.0:
                raise ValueError(f"alpha_s entries must be finite and > 0, got {a!r}")

    @property
    def n_layers(self) -> int:
        return len(self.d_mu_a)

    @property
    def is_zero(self) -> bool:
        """Exactly the identity perturbation (bit-for-bit zero deltas)."""
        return all(v == 0.0 for v in self.d_mu_a) and all(
            a == 1.0 for a in self.alpha_s
        )

    @property
    def is_exact(self) -> bool:
        """Whether the reweighting is exact (absorption-only perturbation).

        Scattering scaling uses the first-order collision-count
        approximation ``k ≈ μs·L``; absorption reweighting has no
        approximation at all.
        """
        return all(a == 1.0 for a in self.alpha_s)

    @classmethod
    def between(cls, parent: dict, child: dict) -> "PerturbationDelta":
        """The delta turning ``parent`` coefficients into ``child``.

        Both arguments are ``{"mu_a": [...], "mu_s": [...]}`` dicts as
        produced by
        :func:`repro.service.fingerprint.perturbable_coefficients`.
        """
        pa, ps = list(parent["mu_a"]), list(parent["mu_s"])
        ca, cs = list(child["mu_a"]), list(child["mu_s"])
        if not (len(pa) == len(ps) == len(ca) == len(cs)):
            raise ValueError(
                "parent and child coefficient vectors must share one layer count"
            )
        for v in ps:
            if not (math.isfinite(v) and v > 0.0):
                raise ValueError(
                    f"parent mu_s entries must be finite and > 0, got {v!r}"
                )
        return cls(
            d_mu_a=tuple(float(c) - float(p) for c, p in zip(ca, pa)),
            alpha_s=tuple(float(c) / float(p) for c, p in zip(cs, ps)),
        )

    @classmethod
    def from_stacks(cls, parent, child) -> "PerturbationDelta":
        """The delta between two :class:`~repro.tissue.layer.LayerStack`."""
        return cls.between(
            {"mu_a": list(parent.mu_a), "mu_s": list(parent.mu_s)},
            {"mu_a": list(child.mu_a), "mu_s": list(child.mu_s)},
        )

    def as_dict(self) -> dict:
        """JSON-ready form (for provenance and journal records)."""
        return {
            "d_mu_a": list(self.d_mu_a),
            "alpha_s": list(self.alpha_s),
            "exact": self.is_exact,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerturbationDelta":
        return cls(d_mu_a=tuple(d["d_mu_a"]), alpha_s=tuple(d["alpha_s"]))


def reweight_factors(
    paths: PathRecords,
    delta: PerturbationDelta,
    *,
    mu_s: "np.ndarray | list[float] | None" = None,
) -> np.ndarray:
    """Per-record likelihood ratios for the perturbed optical properties.

    For record ``j`` with per-layer geometric paths ``L_ij``::

        r_j = exp( Σ_i [ -Δμa_i·L_ij + μs_i·L_ij·(ln α_i - α_i + 1) ] )

    The absorption term is exact; the scattering term approximates the
    collision count by its expectation ``k_i ≈ μs_i·L_ij`` (first order —
    see the package docstring).  ``mu_s`` is the **parent's** per-layer
    scattering coefficient, required only when the delta actually scales
    scattering.
    """
    if paths.n_layers != delta.n_layers:
        raise PerturbationError(
            f"records cover {paths.n_layers} layers, delta {delta.n_layers}"
        )
    lp = paths.column("layer_paths")  # (rows, n_layers); requires sealed
    exponent = lp @ (-np.asarray(delta.d_mu_a, dtype=np.float64))
    if not delta.is_exact:
        if mu_s is None:
            raise PerturbationError(
                "scattering perturbation needs the parent per-layer mu_s"
            )
        mu_s = np.asarray(mu_s, dtype=np.float64)
        if mu_s.shape != (paths.n_layers,):
            raise PerturbationError(
                f"mu_s has shape {mu_s.shape}, expected ({paths.n_layers},)"
            )
        if not np.all(np.isfinite(mu_s) & (mu_s > 0.0)):
            raise PerturbationError("parent mu_s must be finite and > 0 per layer")
        alpha = np.asarray(delta.alpha_s, dtype=np.float64)
        exponent = exponent + (lp * mu_s) @ (np.log(alpha) - alpha + 1.0)
    return np.exp(exponent)


def derived_std(paths: PathRecords, factors: np.ndarray) -> float:
    """1σ uncertainty of the derived ``detected_weight`` sum.

    Detected photons are independent, so the variance of the reweighted
    sum ``Σ w_j·r_j`` is estimated by ``Σ (w_j·r_j)²`` (the single-sample
    per-photon estimator; the relative error of the *normalized* detected
    weight follows by dividing by ``n_launched``).  This is what the
    3σ agreement tests — and callers judging whether a derivation's
    statistics are still useful — compare against.
    """
    rw = paths.column("weight") * np.asarray(factors, dtype=np.float64)
    return float(np.sqrt(np.sum(rw * rw)))


def _stat_from(values: np.ndarray, weights: np.ndarray) -> RunningStat:
    """A RunningStat as if ``add(values, weights)`` had run once per row."""
    if values.size == 0:
        return RunningStat()
    return RunningStat(
        count=float(values.size),
        weight=float(weights.sum()),
        weighted_sum=float((weights * values).sum()),
        weighted_sumsq=float((weights * values * values).sum()),
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def derive_tally(
    parent: Tally,
    delta: PerturbationDelta,
    *,
    mu_s: "np.ndarray | list[float] | None" = None,
) -> Tally:
    """Derive the tally for perturbed optical properties from ``parent``.

    Requires ``parent.paths`` (a ``capture_paths=True`` run) — raises
    :class:`PerturbationError` otherwise; a derivation never silently
    falls back to re-simulation.  The identity delta short-circuits to a
    plain deep copy, bit-identical to the parent.

    The derived tally recomputes the detected-photon estimators
    (:data:`DERIVED_FIELDS`) from the reweighted records — including the
    records themselves, whose ``weight`` column becomes ``w·r`` so the
    derived tally remains self-consistent and further derivable.  Every
    other field keeps the parent's value (:data:`PARENT_VALUED_FIELDS`);
    the attached ``derivation`` attribute says so::

        tally.derivation = {
            "perturbation": delta.as_dict(),
            "fields_at_parent_properties": [...],
            "derived_std": <1σ of the derived detected-weight sum>,
        }
    """
    if parent.paths is None:
        raise PerturbationError(
            "parent tally carries no path records; re-run the parent with "
            "capture_paths=True (derivation does not fall back to simulation)"
        )
    if not parent.paths.is_sealed:
        raise PerturbationError("parent path records are not sealed")
    if parent.paths.n_layers != delta.n_layers:
        raise PerturbationError(
            f"parent records cover {parent.paths.n_layers} layers, "
            f"delta {delta.n_layers}"
        )
    if parent.paths.n_rows != parent.detected_count:
        raise PerturbationError(
            f"parent records hold {parent.paths.n_rows} rows for "
            f"{parent.detected_count} detected photons — partial records "
            "cannot stand in for the detected ensemble"
        )

    out = parent.copy()
    if delta.is_zero:
        out.derivation = {
            "perturbation": delta.as_dict(),
            "fields_at_parent_properties": [],
            "derived_std": derived_std(parent.paths, np.ones(parent.paths.n_rows)),
        }
        return out

    factors = reweight_factors(parent.paths, delta, mu_s=mu_s)
    weights = parent.paths.column("weight")
    opl = parent.paths.column("opl")
    max_depth = parent.paths.column("max_depth")
    rw = weights * factors

    out.detected_weight = float(rw.sum())
    out.pathlength = _stat_from(opl, rw)
    out.penetration_depth = _stat_from(max_depth, rw)
    if parent.pathlength_hist is not None:
        rebuilt = type(parent.pathlength_hist)(
            edges=parent.pathlength_hist.edges.copy()
        )
        rebuilt.add(opl, rw)
        out.pathlength_hist = rebuilt

    # Reweight the records in place on the copy: segmentation (and thus
    # mergeability/shape) is preserved, only the weight column changes.
    offset = 0
    for _, segment in out.paths._segments:
        n = segment["weight"].size
        segment["weight"] = np.ascontiguousarray(rw[offset:offset + n])
        offset += n

    out.derivation = {
        "perturbation": delta.as_dict(),
        "fields_at_parent_properties": list(PARENT_VALUED_FIELDS),
        "derived_std": derived_std(parent.paths, factors),
    }
    return out
