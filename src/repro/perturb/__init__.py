"""Perturbation ("white") Monte Carlo: derive tallies without re-simulating.

A detected photon's contribution factorises over the layers it crossed:
``w · Π_i μs_i^{k_i} e^{-μt_i L_i}`` (collisions ``k_i``, geometric path
``L_i`` in layer ``i``).  Given the per-layer pathlengths of every detected
photon (:class:`~repro.detect.records.PathRecords`, captured with
``capture_paths=True``), the detected-photon estimators for *perturbed*
optical properties follow by reweighting each recorded photon:

* absorption ``μa → μa + Δμa`` — **exact**: ratio ``e^{-Δμa_i·L_i}``
  per layer (the path geometry does not depend on μa in an MCML-style
  kernel, where step lengths are sampled from μt but weight carries the
  survival factor; here steps are sampled from μt, so the absorption
  reweighting over recorded paths is the standard pMC estimator);
* scattering ``μs → α·μs`` — **first-order**: the collision count is
  approximated by its expectation ``k_i ≈ μs_i·L_i``, giving
  ``exp(μs_i·L_i·(ln α_i − α_i + 1))``.  Flagged in provenance; accurate
  for ``|α−1|`` of a few percent.

The service layer (:mod:`repro.service`) uses these kernels to answer a
request that differs from a cached run only in μa/μs by *deriving* it from
the cached run's records — the derivation-graph counterpart of the
prefix-extension budget cache.
"""

from .reweight import (
    DERIVED_FIELDS,
    PARENT_VALUED_FIELDS,
    PerturbationDelta,
    PerturbationError,
    derive_tally,
    derived_std,
    reweight_factors,
)
from .archive import derive_from_archive

__all__ = [
    "DERIVED_FIELDS",
    "PARENT_VALUED_FIELDS",
    "PerturbationDelta",
    "PerturbationError",
    "derive_from_archive",
    "derive_tally",
    "derived_std",
    "reweight_factors",
]
