"""repro — Distributed Monte Carlo simulation of light transport in tissue.

A from-scratch Python reproduction of Page, Coyle, Keane, Naughton, Markham
and Ward, *Distributed Monte Carlo Simulation of Light Transportation in
Tissue* (IPPS 2006): an MCML-family layered-tissue photon-transport Monte
Carlo engine plus the master–worker distributed platform the paper runs it
on, with a discrete-event cluster simulator for the parallel-efficiency
experiments.

Quickstart
----------
>>> from repro import Simulation, SimulationConfig
>>> from repro.tissue import white_matter
>>> from repro.sources import PencilBeam
>>> config = SimulationConfig(stack=white_matter(), source=PencilBeam())
>>> tally = Simulation(config).run(n_photons=1000, seed=42)
>>> 0.9 < tally.energy_balance < 1.1  # R + A + T accounts for all energy
True
"""

from .core import (
    RecordConfig,
    RouletteConfig,
    Simulation,
    SimulationConfig,
    Tally,
)

__version__ = "1.0.0"

__all__ = [
    "RecordConfig",
    "RouletteConfig",
    "Simulation",
    "SimulationConfig",
    "Tally",
    "__version__",
]
