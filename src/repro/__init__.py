"""repro — Distributed Monte Carlo simulation of light transport in tissue.

A from-scratch Python reproduction of Page, Coyle, Keane, Naughton, Markham
and Ward, *Distributed Monte Carlo Simulation of Light Transportation in
Tissue* (IPPS 2006): an MCML-family layered-tissue photon-transport Monte
Carlo engine plus the master–worker distributed platform the paper runs it
on, with a discrete-event cluster simulator for the parallel-efficiency
experiments.

Quickstart
----------
>>> from repro import Simulation, SimulationConfig
>>> from repro.tissue import white_matter
>>> from repro.sources import PencilBeam
>>> config = SimulationConfig(stack=white_matter(), source=PencilBeam())
>>> tally = Simulation(config).run(n_photons=1000, seed=42)
>>> 0.9 < tally.energy_balance < 1.1  # R + A + T accounts for all energy
True

Or through the unified run facade (serial, pooled and served runs share
one entry point and one telemetry attachment site):

>>> from repro.api import RunRequest, run
>>> report = run(RunRequest(model="white_matter", n_photons=1000, seed=42))
"""

import importlib

from .core import (
    RecordConfig,
    RouletteConfig,
    Simulation,
    SimulationConfig,
    Tally,
)

__version__ = "1.0.0"

__all__ = [
    "RecordConfig",
    "RouletteConfig",
    "Simulation",
    "SimulationConfig",
    "Tally",
    "api",
    "observe",
    "service",
    "__version__",
]

_LAZY_SUBMODULES = ("api", "observe", "distributed", "cluster", "service")


def __getattr__(name: str):
    # ``repro.api`` / ``repro.observe`` resolve on first touch without
    # dragging the distributed stack into every ``import repro``.
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
