"""Machine models for the simulated cluster.

The paper characterises its clients by processing rate in Mflop/s and JVM
memory (Table 2).  We model a machine's Monte Carlo throughput as

``photons_per_second = photons_per_mflop * mflops * availability``

with a single calibration constant ``photons_per_mflop`` chosen so the
Table 2 cluster simulates 10⁹ photons in ≈2 hours, exactly as the paper
reports (see :mod:`repro.cluster.specs`).  Table 2 lists Mflop/s *ranges*
for the big machine classes (the measured variation on non-dedicated
hardware); each concrete machine draws its nominal rate from its class
range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineClass", "Machine", "expand_classes"]


@dataclass(frozen=True)
class MachineClass:
    """One row of a cluster census (e.g. one row of the paper's Table 2).

    Attributes
    ----------
    count:
        Number of identical machines in the class (the "#" column).
    mflops_min, mflops_max:
        Measured processing-rate range in Mflop/s.
    ram_mb:
        Memory available to the JVM in MB (informational; the photon-batch
        task sizes used here fit comfortably in every Table 2 machine).
    os, processor:
        Descriptive strings from the census.
    """

    count: int
    mflops_min: float
    mflops_max: float
    ram_mb: int
    os: str
    processor: str

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be > 0, got {self.count}")
        if not 0 < self.mflops_min <= self.mflops_max:
            raise ValueError(
                f"need 0 < mflops_min <= mflops_max, got [{self.mflops_min}, {self.mflops_max}]"
            )
        if self.ram_mb <= 0:
            raise ValueError(f"ram_mb must be > 0, got {self.ram_mb}")

    @property
    def mflops_mid(self) -> float:
        return 0.5 * (self.mflops_min + self.mflops_max)


@dataclass(frozen=True)
class Machine:
    """A concrete machine in the simulated cluster."""

    machine_id: int
    name: str
    mflops: float
    ram_mb: int
    os: str

    def __post_init__(self) -> None:
        if self.mflops <= 0:
            raise ValueError(f"mflops must be > 0, got {self.mflops}")

    def photon_rate(self, photons_per_mflop: float, availability: float = 1.0) -> float:
        """Throughput in photons/s at the given availability multiplier."""
        if photons_per_mflop <= 0:
            raise ValueError(f"photons_per_mflop must be > 0, got {photons_per_mflop}")
        if not 0.0 < availability <= 1.0:
            raise ValueError(f"availability must lie in (0, 1], got {availability}")
        return photons_per_mflop * self.mflops * availability


def expand_classes(
    classes: list[MachineClass],
    rng: np.random.Generator | None = None,
) -> list[Machine]:
    """Materialise a census into concrete machines.

    Each machine's nominal Mflop/s is drawn uniformly from its class range
    (or fixed at the midpoint when ``rng`` is None), matching the paper's
    observation that rates of non-dedicated machines vary.
    """
    machines: list[Machine] = []
    mid = 0
    for cls_index, cls in enumerate(classes):
        for i in range(cls.count):
            if rng is None or cls.mflops_min == cls.mflops_max:
                mflops = cls.mflops_mid
            else:
                mflops = float(rng.uniform(cls.mflops_min, cls.mflops_max))
            machines.append(
                Machine(
                    machine_id=mid,
                    name=f"{cls.processor}#{cls_index}.{i}",
                    mflops=mflops,
                    ram_mb=cls.ram_mb,
                    os=cls.os,
                )
            )
            mid += 1
    return machines
