"""Stochastic availability of non-dedicated machines.

The paper: "We had non-dedicated usage of these processors, and the
available processing and network resources varied stochastically over
time."  An availability model supplies, for each task execution, the
fraction of the machine's nominal rate actually available to the Monte
Carlo client while that task runs (owner processes steal the rest).

Models draw from the generator they are handed, so cluster simulations are
reproducible given a seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "AvailabilityModel",
    "Dedicated",
    "UniformAvailability",
    "OwnerInterference",
]


class AvailabilityModel(abc.ABC):
    """Per-task availability multiplier in (0, 1]."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw the availability multiplier for one task execution."""


@dataclass(frozen=True)
class Dedicated(AvailabilityModel):
    """Fully dedicated machine: availability is always 1."""

    def sample(self, rng: np.random.Generator) -> float:
        return 1.0


@dataclass(frozen=True)
class UniformAvailability(AvailabilityModel):
    """Availability uniform in [lo, hi] — mild background load.

    The default for the Table 2 simulation: semi-idle desktop PCs whose
    spare cycles fluctuate but rarely vanish.
    """

    lo: float = 0.7
    hi: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.lo <= self.hi <= 1.0:
            raise ValueError(f"need 0 < lo <= hi <= 1, got [{self.lo}, {self.hi}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.lo, self.hi))


@dataclass(frozen=True)
class OwnerInterference(AvailabilityModel):
    """Two-state model: machine is either free or owner-loaded.

    With probability ``p_busy`` the owner is using the PC while the task
    runs and the client only gets ``busy_multiplier`` of the nominal rate;
    otherwise it gets the full machine.  Captures the bimodal day/night
    pattern of desktop harvesting.
    """

    p_busy: float = 0.3
    busy_multiplier: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_busy <= 1.0:
            raise ValueError(f"p_busy must lie in [0, 1], got {self.p_busy}")
        if not 0.0 < self.busy_multiplier <= 1.0:
            raise ValueError(
                f"busy_multiplier must lie in (0, 1], got {self.busy_multiplier}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return self.busy_multiplier if rng.random() < self.p_busy else 1.0
