"""Simulated distributed cluster (Fig. 2 speedup, Table 2 heterogeneity)."""

from .availability import (
    AvailabilityModel,
    Dedicated,
    OwnerInterference,
    UniformAvailability,
)
from .events import EventQueue
from .ga_scheduler import GAConfig, GAResult, ga_schedule
from .guided import GuidedConfig, simulate_run_guided
from .machine import Machine, MachineClass, expand_classes
from .metrics import SpeedupPoint, efficiency, speedup, speedup_curve
from .schedulers import predicted_makespan, static_block, static_weighted
from .simcluster import MachineStats, MasterModel, NetworkModel, SimReport, simulate_run
from .trace import TaskInterval, ascii_gantt, extract_intervals
from .specs import (
    HOMOGENEOUS_MFLOPS,
    PHOTONS_PER_MFLOP,
    SERVER_DESCRIPTION,
    TABLE2_CLASSES,
    homogeneous_cluster,
    table2_cluster,
    total_mflops,
)

__all__ = [
    "AvailabilityModel",
    "Dedicated",
    "EventQueue",
    "GAConfig",
    "GAResult",
    "GuidedConfig",
    "HOMOGENEOUS_MFLOPS",
    "Machine",
    "MachineClass",
    "MachineStats",
    "MasterModel",
    "NetworkModel",
    "OwnerInterference",
    "PHOTONS_PER_MFLOP",
    "SERVER_DESCRIPTION",
    "SimReport",
    "SpeedupPoint",
    "TaskInterval",
    "TABLE2_CLASSES",
    "UniformAvailability",
    "ascii_gantt",
    "efficiency",
    "extract_intervals",
    "expand_classes",
    "ga_schedule",
    "homogeneous_cluster",
    "predicted_makespan",
    "simulate_run",
    "simulate_run_guided",
    "speedup",
    "speedup_curve",
    "static_block",
    "static_weighted",
    "table2_cluster",
    "total_mflops",
]
