"""Cluster specifications from the paper.

``TABLE2_CLASSES`` transcribes Table 2 ("Distributed system resources"):
150 heterogeneous, non-dedicated clients in 8 classes.  ``SERVER`` is the
dedicated Fedora Core 4 server (3 GHz P4, 1 GB RAM) the clients connect to.
``homogeneous_cluster`` builds the speedup-experiment cluster of Fig. 2:
identical non-dedicated Pentium IVs with 512 MB RAM.

Calibration
-----------
``PHOTONS_PER_MFLOP`` converts a machine's Mflop/s rating into Monte Carlo
throughput.  The paper reports that one simulation of 10⁹ photons took
"approximately 2 hours" on the Table 2 cluster *under non-dedicated usage*.
The census totals ≈13 600 Mflop/s; the naive dedicated-cluster estimate

``10⁹ photons / (7200 s × 13 600 Mflop/s) ≈ 10.2 photons / Mflop``

ignores owner interference and self-scheduling imbalance.  With the default
availability model (uniform 0.7–1.0, mean 0.85) and 200k-photon chunks the
discrete-event simulation reproduces the ≈2 h makespan at
``PHOTONS_PER_MFLOP = 13.3``, which we adopt.  Speedup and efficiency (the
Fig. 2 quantities) are time ratios and do not depend on this constant.
"""

from __future__ import annotations

import numpy as np

from .machine import Machine, MachineClass, expand_classes

__all__ = [
    "TABLE2_CLASSES",
    "PHOTONS_PER_MFLOP",
    "SERVER_DESCRIPTION",
    "table2_cluster",
    "homogeneous_cluster",
    "total_mflops",
]

#: Table 2 of the paper, row for row.
TABLE2_CLASSES: list[MachineClass] = [
    MachineClass(91, 28.0, 31.0, 256, "Linux", "P3 600MHz"),
    MachineClass(50, 190.0, 229.0, 512, "Linux", "P4 2.4GHz"),
    MachineClass(4, 15.0, 15.0, 192, "Linux", "P2 266MHz"),
    MachineClass(1, 154.0, 154.0, 1024, "Windows XP", "P4 Centrino 1.4GHz"),
    MachineClass(1, 25.0, 25.0, 512, "Linux", "P3 500 MHz"),
    MachineClass(1, 37.0, 37.0, 256, "Linux", "P3 1GHz"),
    MachineClass(1, 72.0, 72.0, 256, "Linux", "P4 1.7GHz"),
    MachineClass(1, 91.0, 91.0, 1024, "FreeBSD", "AMD 2400+XP"),
]

#: The dedicated server of the paper's testbed (informational).
SERVER_DESCRIPTION = "Linux (Fedora Core 4), 3GHz P4, 1GB RAM"

#: Monte Carlo throughput calibration (photons per Mflop); see module docs.
PHOTONS_PER_MFLOP = 13.3

#: Nominal Mflop/s of the Fig. 2 homogeneous Pentium-IV machines (the
#: midpoint of the Table 2 P4 2.4 GHz class).
HOMOGENEOUS_MFLOPS = 209.5


def table2_cluster(rng: np.random.Generator | None = None) -> list[Machine]:
    """The 150-machine heterogeneous cluster of Table 2."""
    machines = expand_classes(TABLE2_CLASSES, rng)
    assert len(machines) == 150, "Table 2 census must total 150 clients"
    return machines


def homogeneous_cluster(k: int, mflops: float = HOMOGENEOUS_MFLOPS) -> list[Machine]:
    """``k`` identical Pentium-IV class machines (the Fig. 2 testbed)."""
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    cls = MachineClass(k, mflops, mflops, 512, "Linux", "P4")
    return expand_classes([cls])


def total_mflops(machines: list[Machine]) -> float:
    """Aggregate processing rate of a cluster in Mflop/s."""
    return sum(m.mflops for m in machines)
