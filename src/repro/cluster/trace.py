"""Execution traces and Gantt rendering for simulated cluster runs.

The DES reports aggregate statistics; for *understanding* a schedule (why
did the makespan balloon? which machine ran the straggler?) you want the
timeline.  ``TracingStats`` is a drop-in per-machine accounting object that
additionally records every task interval, and :func:`ascii_gantt` renders
the result as a text Gantt chart — the visual that makes the fixed-chunk
tail-straggler of ``bench_ablation_scheduler.py`` obvious at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .simcluster import SimReport

__all__ = ["TaskInterval", "extract_intervals", "ascii_gantt", "emit_span_events"]


@dataclass(frozen=True)
class TaskInterval:
    """One executed task on the timeline."""

    machine_id: int
    start: float
    end: float
    photons: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def extract_intervals(report: SimReport) -> list[TaskInterval]:
    """Intervals recorded in a report produced with tracing enabled.

    :func:`repro.cluster.simcluster.simulate_run` populates
    ``MachineStats.intervals`` when available; reports from older runs
    without intervals yield an empty list.
    """
    intervals: list[TaskInterval] = []
    for machine_id, stats in report.per_machine.items():
        for start, end, photons in getattr(stats, "intervals", ()):  # type: ignore[attr-defined]
            intervals.append(TaskInterval(machine_id, start, end, photons))
    return sorted(intervals, key=lambda iv: (iv.machine_id, iv.start))


def emit_span_events(report: SimReport, telemetry, *, name: str = "task.attempt") -> None:
    """Replay a traced report's task intervals into a telemetry stream.

    Simulated runs thereby emit the *same* span schema as real ones —
    ``span_start``/``span_end`` pairs named ``task.attempt`` — just stamped
    with simulated seconds (``t``) instead of wall clock and tagged
    ``sim=True``.  One consumer can therefore chart a DES what-if next to a
    real run.  Counters and histograms (machine photons, task durations,
    ``run.photons_per_s``) are filled from the same intervals.
    """
    intervals = extract_intervals(report)
    telemetry.emit(
        "run_start", t=0.0, sim=True,
        n_tasks=report.n_tasks, n_photons=report.n_photons,
        machines=report.n_machines,
    )
    timeline: list[tuple[float, int, dict]] = []
    for interval in intervals:
        span_id = telemetry.new_span_id()
        fields = {
            "name": name,
            "span_id": span_id,
            "machine": interval.machine_id,
            "photons": interval.photons,
            "sim": True,
        }
        timeline.append((interval.start, 0, {"event": "span_start", **fields}))
        timeline.append((
            interval.end, 1,
            {"event": "span_end", "duration_s": interval.duration, **fields},
        ))
        telemetry.registry.counter(
            "machine.photons", machine=str(interval.machine_id)
        ).add(interval.photons)
        telemetry.observe("task.seconds", interval.duration)
    timeline.sort(key=lambda item: (item[0], item[1]))
    for t, _, record in timeline:
        kind = record.pop("event")
        telemetry.emit(kind, t=t, **record)
    telemetry.gauge("run.photons_per_s", report.photons_per_second)
    telemetry.emit(
        "run_end", t=report.makespan_seconds, sim=True,
        n_tasks=report.n_tasks, wall_seconds=report.makespan_seconds,
    )


def ascii_gantt(
    report: SimReport,
    *,
    width: int = 72,
    max_machines: int = 24,
) -> str:
    """Render a report's task intervals as an ASCII Gantt chart.

    Each row is one machine; ``#`` marks busy time, ``.`` idle time inside
    the makespan.  Machines beyond ``max_machines`` are summarised in a
    trailing line.  Requires a traced report (see :func:`extract_intervals`).
    """
    intervals = extract_intervals(report)
    if not intervals:
        raise ValueError(
            "report has no task intervals; run simulate_run(..., trace=True)"
        )
    makespan = report.makespan_seconds
    if makespan <= 0:
        return "(empty run)"

    by_machine: dict[int, list[TaskInterval]] = {}
    for interval in intervals:
        by_machine.setdefault(interval.machine_id, []).append(interval)

    lines = [f"time 0 {'-' * (width - 12)} {makespan:.0f}s"]
    for i, (machine_id, machine_intervals) in enumerate(sorted(by_machine.items())):
        if i >= max_machines:
            remaining = len(by_machine) - max_machines
            lines.append(f"... and {remaining} more machines")
            break
        row = ["."] * width
        for interval in machine_intervals:
            a = int(interval.start / makespan * width)
            b = max(a + 1, int(interval.end / makespan * width))
            for j in range(a, min(b, width)):
                row[j] = "#"
        lines.append(f"m{machine_id:03d} |{''.join(row)}|")
    return "\n".join(lines)
