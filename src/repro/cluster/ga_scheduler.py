"""Genetic-algorithm task scheduler for heterogeneous clusters.

Implements the approach of the paper's ref [4] — Page & Naughton,
*"Framework for task scheduling in heterogeneous distributed computing
using genetic algorithms"*, Artificial Intelligence Review 24 (2005) —
which the paper points to "for further discussion on the efficiency of a
system using heterogeneous processors".

A chromosome is a task→machine assignment vector; fitness is the predicted
makespan (:func:`repro.cluster.schedulers.predicted_makespan`).  The GA
uses tournament selection, uniform crossover, point mutation and elitism,
and is seeded with the weighted-static heuristic so it never does worse
than the baseline it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .machine import Machine
from .schedulers import predicted_makespan, static_weighted

__all__ = ["GAConfig", "GAResult", "ga_schedule"]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the scheduling GA."""

    population: int = 40
    generations: int = 120
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    elitism: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(f"generations must be >= 1, got {self.generations}")
        if not 2 <= self.tournament <= self.population:
            raise ValueError("tournament size must lie in [2, population]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must lie in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must lie in [0, 1]")
        if not 0 <= self.elitism < self.population:
            raise ValueError("elitism must lie in [0, population)")


@dataclass
class GAResult:
    """Outcome of a GA scheduling run."""

    assignment: np.ndarray
    makespan: float
    history: list[float] = field(default_factory=list)

    @property
    def generations(self) -> int:
        return len(self.history)


def ga_schedule(
    task_sizes: list[int],
    machines: list[Machine],
    photons_per_mflop: float,
    *,
    per_task_overhead_s: float = 0.0,
    config: GAConfig = GAConfig(),
) -> GAResult:
    """Evolve a static task→machine assignment minimising predicted makespan.

    Returns the best assignment found, its predicted makespan, and the
    best-fitness history (monotone non-increasing thanks to elitism —
    property-tested).
    """
    n_tasks = len(task_sizes)
    if n_tasks == 0:
        return GAResult(assignment=np.empty(0, dtype=np.int64), makespan=0.0)
    if not machines:
        raise ValueError("need at least one machine")

    rng = np.random.default_rng(config.seed)
    ids = np.asarray([m.machine_id for m in machines], dtype=np.int64)

    def fitness(chrom: np.ndarray) -> float:
        return predicted_makespan(
            chrom, task_sizes, machines, photons_per_mflop,
            per_task_overhead_s=per_task_overhead_s,
        )

    # Initial population: the weighted heuristic + random assignments.
    population = [static_weighted(n_tasks, machines)]
    while len(population) < config.population:
        population.append(ids[rng.integers(0, len(ids), n_tasks)])
    scores = np.asarray([fitness(c) for c in population])

    history: list[float] = []
    for _generation in range(config.generations):
        order = np.argsort(scores)
        history.append(float(scores[order[0]]))

        next_pop = [population[i].copy() for i in order[: config.elitism]]

        def pick() -> np.ndarray:
            contenders = rng.integers(0, len(population), config.tournament)
            best = contenders[np.argmin(scores[contenders])]
            return population[best]

        while len(next_pop) < config.population:
            a, b = pick(), pick()
            if rng.random() < config.crossover_rate:
                mask = rng.random(n_tasks) < 0.5
                child = np.where(mask, a, b)
            else:
                child = a.copy()
            mutate = rng.random(n_tasks) < config.mutation_rate
            n_mut = int(mutate.sum())
            if n_mut:
                child = child.copy()
                child[mutate] = ids[rng.integers(0, len(ids), n_mut)]
            next_pop.append(child)

        population = next_pop
        scores = np.asarray([fitness(c) for c in population])

    best = int(np.argmin(scores))
    history.append(float(scores[best]))
    return GAResult(
        assignment=population[best].astype(np.int64),
        makespan=float(scores[best]),
        history=history,
    )
