"""Discrete-event simulation of the master-worker cluster.

This is the substitute for the paper's physical testbed (DESIGN.md,
substitution table): a deterministic discrete-event model of the
DataManager serving photon-batch tasks to client machines, with

* a **single-threaded master** — assignments and result merges serialise
  on the server, the fundamental scalability limit of the architecture;
* **network costs** — per-message latency plus payload/bandwidth transfer
  times for task descriptions and result tallies;
* **heterogeneous machines** — per-machine Mflop/s ratings (Table 2)
  converted to photon throughput by the calibrated constant in
  :mod:`repro.cluster.specs`;
* **stochastic availability** — non-dedicated machines yield only part of
  their nominal rate (:mod:`repro.cluster.availability`);
* two scheduling modes — pull-based *self-scheduling* (the paper's
  platform) and *static* pre-assignment (the baseline the GA scheduler of
  the authors' ref [4] improves on).

The simulated quantities are exactly those the paper reports: makespan
P_k, speedup P1/P_k and efficiency P1/(k P_k) (Fig. 2), and the ≈2 h
makespan of 10⁹ photons on the Table 2 cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.simulation import split_photons
from .availability import AvailabilityModel, Dedicated
from .events import EventQueue
from .machine import Machine
from .specs import PHOTONS_PER_MFLOP

__all__ = ["NetworkModel", "MasterModel", "MachineStats", "SimReport", "simulate_run"]


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point network between the server and every client.

    Defaults model the paper's campus LAN: ~1 ms one-way latency,
    100 Mbit/s shared bandwidth, small task descriptions and tally payloads
    of a few hundred kilobytes.
    """

    latency_s: float = 0.001
    bandwidth_bytes_per_s: float = 12.5e6  # 100 Mbit/s
    task_bytes: int = 4_096
    result_bytes: int = 262_144

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth_bytes_per_s must be > 0, got {self.bandwidth_bytes_per_s}"
            )
        if self.task_bytes < 0 or self.result_bytes < 0:
            raise ValueError("payload sizes must be >= 0")

    def task_transfer_s(self) -> float:
        """Server -> client transfer time of one task description."""
        return self.latency_s + self.task_bytes / self.bandwidth_bytes_per_s

    def result_transfer_s(self) -> float:
        """Client -> server transfer time of one result tally."""
        return self.latency_s + self.result_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class MasterModel:
    """Server-side per-task costs (single-threaded DataManager).

    ``assign_overhead_s`` is the CPU time to pick and serialise a task;
    ``merge_overhead_s`` the time to deserialise and merge one returned
    tally.  Both serialise on the master, so their sum bounds the master's
    task throughput at ``1 / (assign + merge)`` tasks per second — the
    ceiling the Fig. 2 efficiency curve bends towards.
    """

    assign_overhead_s: float = 0.010
    merge_overhead_s: float = 0.040

    def __post_init__(self) -> None:
        if self.assign_overhead_s < 0 or self.merge_overhead_s < 0:
            raise ValueError("master overheads must be >= 0")


@dataclass
class MachineStats:
    """Per-machine accounting accumulated by the simulation.

    ``intervals`` holds per-task ``(start, end, photons)`` tuples when the
    run was simulated with ``trace=True`` (for Gantt rendering via
    :mod:`repro.cluster.trace`); it stays empty otherwise.
    """

    tasks: int = 0
    photons: int = 0
    busy_seconds: float = 0.0
    last_finish: float = 0.0
    intervals: list = field(default_factory=list)


@dataclass
class SimReport:
    """Result of one simulated cluster run."""

    makespan_seconds: float
    n_tasks: int
    n_photons: int
    n_machines: int
    master_busy_seconds: float
    per_machine: dict[int, MachineStats] = field(default_factory=dict)

    @property
    def cluster_busy_seconds(self) -> float:
        return sum(s.busy_seconds for s in self.per_machine.values())

    @property
    def mean_utilisation(self) -> float:
        """Average fraction of the makespan the machines spent computing."""
        if self.makespan_seconds <= 0 or self.n_machines == 0:
            return 0.0
        return self.cluster_busy_seconds / (self.makespan_seconds * self.n_machines)

    @property
    def photons_per_second(self) -> float:
        return self.n_photons / self.makespan_seconds if self.makespan_seconds > 0 else 0.0


def simulate_run(
    machines: list[Machine],
    n_photons: int,
    task_size: int,
    *,
    photons_per_mflop: float = PHOTONS_PER_MFLOP,
    availability: AvailabilityModel = Dedicated(),
    network: NetworkModel = NetworkModel(),
    master: MasterModel = MasterModel(),
    seed: int = 0,
    static_assignment: np.ndarray | None = None,
    trace: bool = False,
    telemetry=None,
) -> SimReport:
    """Simulate one distributed Monte Carlo run and return its timings.

    Parameters
    ----------
    machines:
        The cluster (e.g. from :func:`repro.cluster.specs.table2_cluster`).
    n_photons, task_size:
        Photon budget and self-scheduling chunk size; the task list is the
        same canonical decomposition the real platform uses.
    static_assignment:
        ``None`` (default) simulates pull-based self-scheduling.  Otherwise
        an int array mapping each task index to a machine id: tasks are
        pre-assigned (static scheduling) and each machine works through its
        list; the master then only merges results.
    seed:
        Seed of the availability draws.
    trace:
        Record per-task ``(start, end, photons)`` intervals in each
        machine's stats (enables :func:`repro.cluster.trace.ascii_gantt`).
    telemetry:
        Optional :class:`~repro.observe.Telemetry`; implies ``trace`` and
        replays the simulated task intervals as span events stamped with
        simulated time (:func:`repro.cluster.trace.emit_span_events`) —
        the same schema a real run emits.

    Returns
    -------
    SimReport with makespan, per-machine accounting and master utilisation.
    """
    if not machines:
        raise ValueError("need at least one machine")
    if telemetry is not None:
        trace = True  # span replay needs the intervals
    task_sizes = split_photons(n_photons, task_size)
    n_tasks = len(task_sizes)
    rng = np.random.default_rng(seed)
    queue = EventQueue()

    stats = {m.machine_id: MachineStats() for m in machines}
    by_id = {m.machine_id: m for m in machines}
    master_busy_until = 0.0
    master_busy_total = 0.0
    merged = 0
    makespan = 0.0

    if static_assignment is not None:
        static_assignment = np.asarray(static_assignment, dtype=np.int64)
        if static_assignment.shape != (n_tasks,):
            raise ValueError(
                f"static_assignment must map all {n_tasks} tasks, got shape "
                f"{static_assignment.shape}"
            )
        unknown = set(static_assignment.tolist()) - set(by_id)
        if unknown:
            raise ValueError(f"static_assignment references unknown machines {unknown}")

    def compute_time(machine: Machine, photons: int) -> float:
        rate = machine.photon_rate(photons_per_mflop, availability.sample(rng))
        return photons / rate

    def master_service(now: float, overhead: float) -> float:
        """Serialise ``overhead`` seconds of master work; return finish time."""
        nonlocal master_busy_until, master_busy_total
        start = max(now, master_busy_until)
        finish = start + overhead
        master_busy_until = finish
        master_busy_total += overhead
        return finish

    def record_completion(machine_id: int, photons: int, duration: float, end: float) -> None:
        s = stats[machine_id]
        s.tasks += 1
        s.photons += photons
        s.busy_seconds += duration
        s.last_finish = end
        if trace:
            s.intervals.append((end - duration, end, photons))

    if n_tasks == 0:
        return SimReport(0.0, 0, 0, len(machines), 0.0, stats)

    # ------------------------------------------------------------------ self
    if static_assignment is None:
        pending = list(range(n_tasks))  # task indices, FIFO
        next_task = iter(pending)

        def try_assign(now: float, machine_id: int) -> None:
            """Master assigns the next task to ``machine_id`` (if any left)."""
            try:
                t_idx = next(next_task)
            except StopIteration:
                return
            finish = master_service(now, master.assign_overhead_s)
            arrive = finish + network.task_transfer_s()
            machine = by_id[machine_id]
            photons = task_sizes[t_idx]
            duration = compute_time(machine, photons)
            done = arrive + duration
            queue.at(done, on_complete, machine_id, photons, duration, done)

        def on_complete(machine_id: int, photons: int, duration: float, done: float) -> None:
            nonlocal merged, makespan
            record_completion(machine_id, photons, duration, done)
            at_master = done + network.result_transfer_s()
            finish = master_service(at_master, master.merge_overhead_s)
            merged += 1
            makespan = max(makespan, finish)
            # The merged worker immediately pulls its next task.
            try_assign(finish, machine_id)

        # At t=0 every idle client requests work.
        for m in machines:
            queue.at(0.0, try_assign, network.latency_s, m.machine_id)
        queue.run(max_events=10 * n_tasks + 10 * len(machines) + 100)

    # ---------------------------------------------------------------- static
    else:
        lists: dict[int, list[int]] = {m.machine_id: [] for m in machines}
        for t_idx, mid in enumerate(static_assignment.tolist()):
            lists[mid].append(t_idx)

        def start_next(machine_id: int, position: int, now: float) -> None:
            tasks_here = lists[machine_id]
            if position >= len(tasks_here):
                return
            photons = task_sizes[tasks_here[position]]
            duration = compute_time(by_id[machine_id], photons)
            done = now + duration
            queue.at(done, on_static_complete, machine_id, position, photons, duration, done)

        def on_static_complete(
            machine_id: int, position: int, photons: int, duration: float, done: float
        ) -> None:
            nonlocal merged, makespan
            record_completion(machine_id, photons, duration, done)
            at_master = done + network.result_transfer_s()
            finish = master_service(at_master, master.merge_overhead_s)
            merged += 1
            makespan = max(makespan, finish)
            start_next(machine_id, position + 1, done)

        for m in machines:
            start_next(m.machine_id, 0, network.task_transfer_s())
        queue.run(max_events=10 * n_tasks + 10 * len(machines) + 100)

    if merged != n_tasks:
        raise RuntimeError(
            f"simulation invariant violated: merged {merged} of {n_tasks} tasks"
        )
    report = SimReport(
        makespan_seconds=makespan,
        n_tasks=n_tasks,
        n_photons=sum(task_sizes),
        n_machines=len(machines),
        master_busy_seconds=master_busy_total,
        per_machine=stats,
    )
    if telemetry is not None:
        from .trace import emit_span_events

        emit_span_events(report, telemetry)
    return report
