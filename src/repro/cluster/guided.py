"""Guided self-scheduling: dynamically sized chunks.

The fixed-chunk self-scheduling of the paper's platform pays a
tail-straggler penalty on heterogeneous clusters: a slow client that pulls
a full-size chunk near the end of the run extends the makespan by that
chunk's (long) service time (quantified in
``benchmarks/bench_ablation_scheduler.py``).  Guided self-scheduling — the
classic fix, and a natural "future work" extension of the paper's ref [4]
— shrinks chunks as the work pool drains and scales them to the pulling
machine's nominal speed:

``chunk = clamp(remaining * rate_m / total_rate / over_partition,
min_chunk, remaining)``

Big fast machines take big chunks early (low overhead); everyone takes
small chunks late (no stragglers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .availability import AvailabilityModel, Dedicated
from .events import EventQueue
from .machine import Machine
from .simcluster import MachineStats, MasterModel, NetworkModel, SimReport
from .specs import PHOTONS_PER_MFLOP

__all__ = ["GuidedConfig", "simulate_run_guided"]


@dataclass(frozen=True)
class GuidedConfig:
    """Chunk-sizing policy of the guided scheduler.

    Attributes
    ----------
    min_chunk:
        Smallest chunk ever issued (photon counts below this are dominated
        by per-task overhead).
    over_partition:
        How many chunks the remaining pool is notionally divided into per
        "round" (>= 1).  Larger values shrink chunks faster; 1.0 would hand
        a proportional share of everything left to the first machine that
        asks.
    speed_weighted:
        Scale each machine's chunk by its nominal Mflop/s share.  Without
        it, guided scheduling still tapers but ignores heterogeneity.
    """

    min_chunk: int = 10_000
    over_partition: float = 2.0
    speed_weighted: bool = True

    def __post_init__(self) -> None:
        if self.min_chunk <= 0:
            raise ValueError(f"min_chunk must be > 0, got {self.min_chunk}")
        if self.over_partition < 1.0:
            raise ValueError(
                f"over_partition must be >= 1, got {self.over_partition}"
            )


def simulate_run_guided(
    machines: list[Machine],
    n_photons: int,
    *,
    config: GuidedConfig = GuidedConfig(),
    photons_per_mflop: float = PHOTONS_PER_MFLOP,
    availability: AvailabilityModel = Dedicated(),
    network: NetworkModel = NetworkModel(),
    master: MasterModel = MasterModel(),
    seed: int = 0,
) -> SimReport:
    """Simulate a guided-self-scheduled run; returns the usual report.

    Mirrors :func:`repro.cluster.simcluster.simulate_run` but sizes each
    chunk at assignment time instead of from a fixed task list.
    """
    if not machines:
        raise ValueError("need at least one machine")
    if n_photons < 0:
        raise ValueError(f"n_photons must be >= 0, got {n_photons}")

    rng = np.random.default_rng(seed)
    queue = EventQueue()
    stats = {m.machine_id: MachineStats() for m in machines}
    by_id = {m.machine_id: m for m in machines}
    total_rate = sum(m.mflops for m in machines)

    remaining = n_photons
    issued_tasks = 0
    merged = 0
    in_flight = 0
    makespan = 0.0
    master_busy_until = 0.0
    master_busy_total = 0.0

    def master_service(now: float, overhead: float) -> float:
        nonlocal master_busy_until, master_busy_total
        start = max(now, master_busy_until)
        finish = start + overhead
        master_busy_until = finish
        master_busy_total += overhead
        return finish

    def chunk_for(machine: Machine) -> int:
        share = machine.mflops / total_rate if config.speed_weighted else 1.0 / len(machines)
        proposal = int(remaining * share / config.over_partition)
        return max(min(config.min_chunk, remaining), min(proposal, remaining))

    def try_assign(now: float, machine_id: int) -> None:
        nonlocal remaining, issued_tasks, in_flight
        if remaining <= 0:
            return
        machine = by_id[machine_id]
        photons = chunk_for(machine)
        remaining -= photons
        issued_tasks += 1
        in_flight += 1
        finish = master_service(now, master.assign_overhead_s)
        arrive = finish + network.task_transfer_s()
        rate = machine.photon_rate(photons_per_mflop, availability.sample(rng))
        duration = photons / rate
        queue.at(arrive + duration, on_complete, machine_id, photons, duration)

    def on_complete(machine_id: int, photons: int, duration: float) -> None:
        nonlocal merged, makespan, in_flight
        done = queue.now
        s = stats[machine_id]
        s.tasks += 1
        s.photons += photons
        s.busy_seconds += duration
        s.last_finish = done
        at_master = done + network.result_transfer_s()
        finish = master_service(at_master, master.merge_overhead_s)
        merged += 1
        in_flight -= 1
        makespan = max(makespan, finish)
        try_assign(finish, machine_id)

    if n_photons > 0:
        for m in machines:
            queue.at(0.0, try_assign, network.latency_s, m.machine_id)
        queue.run(max_events=100 * len(machines) + 20 * (n_photons // config.min_chunk + 1))

    if remaining != 0 or in_flight != 0:
        raise RuntimeError(
            f"guided simulation invariant violated: {remaining} photons left, "
            f"{in_flight} tasks in flight"
        )
    return SimReport(
        makespan_seconds=makespan,
        n_tasks=issued_tasks,
        n_photons=n_photons,
        n_machines=len(machines),
        master_busy_seconds=master_busy_total,
        per_machine=stats,
    )
