"""A small deterministic discrete-event engine.

The cluster simulator schedules callbacks on a virtual clock.  Events at
equal times fire in insertion order (a monotone sequence number breaks
ties), which makes simulations bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of timed callbacks with a virtual clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback, args))

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual ``time >= now``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        callback(*args)
        return True

    def run(self, *, max_events: int | None = None) -> int:
        """Run until the queue drains; returns the number of events fired.

        ``max_events`` guards against runaway simulations (an event that
        keeps rescheduling itself); exceeding it raises ``RuntimeError``.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events})")
        return fired
