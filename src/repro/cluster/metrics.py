"""Speedup and efficiency metrics (the Fig. 2 quantities).

The paper defines speedup as P1/Pk "where P1 is the time taken on 1
processor and Pk is the time taken using k processors", and efficiency as
speedup over k.  ``speedup_curve`` reruns the cluster simulation across a
range of k and reports the whole series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .availability import AvailabilityModel, Dedicated
from .machine import Machine
from .simcluster import MasterModel, NetworkModel, SimReport, simulate_run
from .specs import HOMOGENEOUS_MFLOPS, PHOTONS_PER_MFLOP, homogeneous_cluster

__all__ = ["speedup", "efficiency", "SpeedupPoint", "speedup_curve"]


def speedup(p1_seconds: float, pk_seconds: float) -> float:
    """Speedup P1 / Pk."""
    if p1_seconds <= 0 or pk_seconds <= 0:
        raise ValueError("times must be > 0")
    return p1_seconds / pk_seconds


def efficiency(p1_seconds: float, pk_seconds: float, k: int) -> float:
    """Parallel efficiency P1 / (k * Pk)."""
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    return speedup(p1_seconds, pk_seconds) / k


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of the Fig. 2 curve."""

    k: int
    pk_seconds: float
    speedup: float
    efficiency: float


def speedup_curve(
    ks: list[int],
    n_photons: int,
    task_size: int,
    *,
    mflops: float = HOMOGENEOUS_MFLOPS,
    photons_per_mflop: float = PHOTONS_PER_MFLOP,
    availability: AvailabilityModel = Dedicated(),
    network: NetworkModel = NetworkModel(),
    master: MasterModel = MasterModel(),
    seed: int = 0,
    cluster_factory: Callable[[int], list[Machine]] | None = None,
) -> list[SpeedupPoint]:
    """Simulate the homogeneous speedup experiment for each k in ``ks``.

    P1 is always measured on the same machine class; each ``k`` gets an
    independent simulation with the same parameters.  ``cluster_factory``
    overrides the default homogeneous cluster (for ablations).
    """
    if not ks:
        raise ValueError("ks must be non-empty")
    if any(k <= 0 for k in ks):
        raise ValueError(f"all k must be > 0, got {ks}")

    factory = cluster_factory or (lambda k: homogeneous_cluster(k, mflops))

    def run(k: int) -> SimReport:
        return simulate_run(
            factory(k),
            n_photons,
            task_size,
            photons_per_mflop=photons_per_mflop,
            availability=availability,
            network=network,
            master=master,
            seed=seed,
        )

    p1 = run(1).makespan_seconds
    points = []
    for k in ks:
        pk = p1 if k == 1 else run(k).makespan_seconds
        points.append(
            SpeedupPoint(
                k=k,
                pk_seconds=pk,
                speedup=speedup(p1, pk),
                efficiency=efficiency(p1, pk, k),
            )
        )
    return points
