"""Static task-scheduling policies for heterogeneous clusters.

The platform's native policy is pull-based self-scheduling (no explicit
assignment needed — pass ``static_assignment=None`` to
:func:`repro.cluster.simcluster.simulate_run`).  These helpers build
*static* assignments, the baselines against which the genetic-algorithm
scheduler of the authors' companion paper (ref [4], Page & Naughton 2005)
is compared:

* :func:`static_block` — equal task counts per machine, oblivious to
  machine speed; collapses on heterogeneous clusters.
* :func:`static_weighted` — task counts proportional to nominal Mflop/s
  (largest-remainder rounding); the sensible static baseline.
"""

from __future__ import annotations

import numpy as np

from .machine import Machine

__all__ = ["static_block", "static_weighted", "predicted_makespan"]


def static_block(n_tasks: int, machines: list[Machine]) -> np.ndarray:
    """Assign tasks to machines round-robin (equal counts ±1)."""
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if not machines:
        raise ValueError("need at least one machine")
    ids = np.asarray([m.machine_id for m in machines], dtype=np.int64)
    return ids[np.arange(n_tasks) % len(machines)]


def static_weighted(n_tasks: int, machines: list[Machine]) -> np.ndarray:
    """Assign task counts proportional to machine Mflop/s.

    Uses largest-remainder apportionment so counts sum exactly to
    ``n_tasks``; each machine's tasks are contiguous in task-index order
    (irrelevant to the simulation, convenient for inspection).
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if not machines:
        raise ValueError("need at least one machine")
    rates = np.asarray([m.mflops for m in machines], dtype=np.float64)
    quota = n_tasks * rates / rates.sum()
    counts = np.floor(quota).astype(np.int64)
    remainder = n_tasks - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(quota - counts))  # largest fractional parts first
        counts[order[:remainder]] += 1
    ids = np.asarray([m.machine_id for m in machines], dtype=np.int64)
    return np.repeat(ids, counts)


def predicted_makespan(
    assignment: np.ndarray,
    task_sizes: list[int],
    machines: list[Machine],
    photons_per_mflop: float,
    *,
    per_task_overhead_s: float = 0.0,
) -> float:
    """Deterministic makespan estimate of a static assignment.

    ``max_i (sum of assigned photons / rate_i + tasks_i * overhead)`` —
    ignores master contention and availability noise, which is exactly the
    fitness function the GA scheduler optimises (a scheduler can only plan
    on expectations).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (len(task_sizes),):
        raise ValueError("assignment and task_sizes must have equal length")
    sizes = np.asarray(task_sizes, dtype=np.float64)
    rate_by_id: dict[int, float] = {
        m.machine_id: m.mflops * photons_per_mflop for m in machines
    }
    finish = 0.0
    for mid in np.unique(assignment):
        mask = assignment == mid
        rate = rate_by_id[int(mid)]
        t = sizes[mask].sum() / rate + per_task_overhead_s * int(mask.sum())
        finish = max(finish, t)
    return finish
