"""Inverse problems and calibration (the paper's motivation and future work)."""

from .calibration import SpacingCalibration, calibrate_spacing, detector_sensitivities
from .fitting import FitResult, fit_optical_properties, mu_a_from_slope
from .mbll import (
    EXTINCTION_HB,
    HaemoglobinChange,
    absorption_change,
    concentration_change,
    haemoglobin_changes,
)

__all__ = [
    "EXTINCTION_HB",
    "FitResult",
    "HaemoglobinChange",
    "SpacingCalibration",
    "absorption_change",
    "calibrate_spacing",
    "concentration_change",
    "detector_sensitivities",
    "fit_optical_properties",
    "haemoglobin_changes",
    "mu_a_from_slope",
]
