"""Modified Beer-Lambert law: chromophore quantification.

The paper's §1, citing Wyatt et al. [7]: "In near-infrared spectroscopic
studies the photon path distribution is necessary for making quantitative
measurements.  [...] This distance, known as the differential pathlength,
is needed to quantify absorption and scattering coefficients and
consequently chromophore concentrations."

The modified Beer-Lambert law (MBLL) is that quantification step:

``delta_OD(lambda) = epsilon(lambda) * delta_c * rho * DPF(lambda)``

where delta_OD is the measured attenuation change, epsilon the molar
extinction coefficient, rho the optode spacing and DPF the differential
pathlength factor our Monte Carlo (or diffusion theory) supplies.  With
two wavelengths the oxy-/deoxy-haemoglobin changes are a 2x2 solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EXTINCTION_HB",
    "absorption_change",
    "concentration_change",
    "HaemoglobinChange",
    "haemoglobin_changes",
]

#: Molar extinction coefficients of haemoglobin, mm^-1 per (mol/l),
#: at the classic NIRS wavelength pair.  Values are the widely used
#: Cope/Delpy compilation numbers converted to this repo's units
#: (1 cm^-1/M = 0.1 mm^-1/M).
EXTINCTION_HB: dict[int, dict[str, float]] = {
    760: {"HbO2": 58.6, "HbR": 165.1},
    850: {"HbO2": 115.0, "HbR": 78.1},
}


def absorption_change(
    delta_od: float, rho: float, dpf: float
) -> float:
    """Absorption-coefficient change from an attenuation change.

    ``delta_mu_a = delta_OD / (rho * DPF)`` — the MBLL with the
    scattering-loss term assumed constant between the two states.
    ``delta_OD`` is in natural-log units (ln(I0/I)).
    """
    if rho <= 0 or dpf <= 0:
        raise ValueError("rho and dpf must be > 0")
    return delta_od / (rho * dpf)


def concentration_change(
    delta_od: float, rho: float, dpf: float, extinction: float
) -> float:
    """Single-chromophore concentration change (mol/l).

    ``delta_c = delta_OD / (epsilon * rho * DPF)``.
    """
    if extinction <= 0:
        raise ValueError(f"extinction must be > 0, got {extinction}")
    return absorption_change(delta_od, rho, dpf) / extinction


@dataclass(frozen=True)
class HaemoglobinChange:
    """Oxy/deoxy-haemoglobin concentration changes (mol/l)."""

    delta_hbo2: float
    delta_hbr: float

    @property
    def delta_total(self) -> float:
        """Total haemoglobin change (cerebral blood volume proxy)."""
        return self.delta_hbo2 + self.delta_hbr

    @property
    def delta_diff(self) -> float:
        """Oxygenation difference signal HbO2 - HbR."""
        return self.delta_hbo2 - self.delta_hbr


def haemoglobin_changes(
    delta_od: dict[int, float],
    rho: float,
    dpf: dict[int, float],
    extinction: dict[int, dict[str, float]] = EXTINCTION_HB,
) -> HaemoglobinChange:
    """Solve the two-wavelength MBLL system for HbO2/HbR changes.

    Parameters
    ----------
    delta_od:
        Attenuation changes keyed by wavelength (nm); exactly two
        wavelengths, both present in ``extinction``.
    rho:
        Optode spacing (mm).
    dpf:
        Differential pathlength factors keyed by the same wavelengths —
        this is where the Monte Carlo model feeds the quantification.
    extinction:
        Extinction table ``{wavelength: {"HbO2": e, "HbR": e}}``.
    """
    wavelengths = sorted(delta_od)
    if len(wavelengths) != 2:
        raise ValueError(f"need exactly 2 wavelengths, got {wavelengths}")
    missing = [wl for wl in wavelengths if wl not in extinction or wl not in dpf]
    if missing:
        raise ValueError(f"missing extinction/DPF data for wavelengths {missing}")

    # delta_mu_a(lambda) = e_HbO2 * dHbO2 + e_HbR * dHbR
    delta_mu_a = np.array(
        [absorption_change(delta_od[wl], rho, dpf[wl]) for wl in wavelengths]
    )
    matrix = np.array(
        [[extinction[wl]["HbO2"], extinction[wl]["HbR"]] for wl in wavelengths]
    )
    condition = np.linalg.cond(matrix)
    if condition > 1e6:
        raise ValueError(
            f"extinction matrix is ill-conditioned ({condition:.2g}); "
            "choose wavelengths on opposite sides of the isosbestic point"
        )
    d_hbo2, d_hbr = np.linalg.solve(matrix, delta_mu_a)
    return HaemoglobinChange(delta_hbo2=float(d_hbo2), delta_hbr=float(d_hbr))
