"""Optode calibration from time-of-flight measurements.

The paper's closing sentence: "Future work will concentrate on utilising
the numerous features of the application to improve the calibration of the
source and detector positions and sensitivities."  This module implements
that calibration for the semi-infinite homogeneous case:

* **positions** — the true source-detector spacing differs from the
  nominal one (probe flex, scalp curvature).  Mean time of flight grows
  monotonically with spacing, so a set of (nominal spacing, measured <t>)
  pairs pins down a common spacing offset;
* **sensitivities** — detected intensity per launched photon at each
  optode, compared against the forward model's prediction, yields each
  detector's gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from ..diffusion.theory import mean_time_of_flight_theory, reflectance_farrell
from ..tissue.optical import OpticalProperties

__all__ = ["SpacingCalibration", "calibrate_spacing", "detector_sensitivities"]


@dataclass(frozen=True)
class SpacingCalibration:
    """Result of a spacing-offset calibration.

    Attributes
    ----------
    offset:
        Recovered common offset (mm): true spacing = nominal + offset.
    residual_rms:
        RMS time-of-flight residual at the optimum (ns).
    """

    offset: float
    residual_rms: float

    def corrected(self, nominal: np.ndarray | float) -> np.ndarray:
        """Apply the calibration to nominal spacings."""
        return np.asarray(nominal, dtype=np.float64) + self.offset


def calibrate_spacing(
    nominal_spacings: np.ndarray,
    measured_tof: np.ndarray,
    props: OpticalProperties,
    *,
    max_offset: float = 10.0,
) -> SpacingCalibration:
    """Fit a common spacing offset from mean time-of-flight data.

    Parameters
    ----------
    nominal_spacings:
        Nominal optode spacings in mm (>= 2 distinct values).
    measured_tof:
        Measured mean times of flight in ns (e.g. from the Monte Carlo
        engine's detected-pathlength statistics divided by c).
    props:
        Optical properties of the medium (known, e.g. from
        :func:`repro.inverse.fitting.fit_optical_properties`).
    max_offset:
        Search bound for |offset| in mm.
    """
    nominal = np.asarray(nominal_spacings, dtype=np.float64)
    tof = np.asarray(measured_tof, dtype=np.float64)
    if nominal.shape != tof.shape or nominal.ndim != 1:
        raise ValueError("spacings and times must be 1-D arrays of equal length")
    if nominal.size < 2:
        raise ValueError("need >= 2 spacings to separate offset from noise")
    if (nominal <= 0).any():
        raise ValueError("nominal spacings must be > 0")

    def residuals(params: np.ndarray) -> np.ndarray:
        offset = params[0]
        spacing = nominal + offset
        if (spacing <= 0.1).any():
            return np.full(nominal.shape, 1e3)
        model = np.array([mean_time_of_flight_theory(s, props) for s in spacing])
        return model - tof

    result = least_squares(
        residuals, x0=np.array([0.0]), bounds=([-max_offset], [max_offset])
    )
    if not result.success:  # pragma: no cover
        raise RuntimeError(f"spacing calibration failed: {result.message}")
    return SpacingCalibration(
        offset=float(result.x[0]),
        residual_rms=float(np.sqrt(np.mean(result.fun**2))),
    )


def detector_sensitivities(
    spacings: np.ndarray,
    measured_intensity: np.ndarray,
    props: OpticalProperties,
    *,
    detector_area: float = 1.0,
) -> np.ndarray:
    """Per-detector gain: measured over model-predicted intensity.

    Parameters
    ----------
    spacings:
        True optode spacings in mm (apply :class:`SpacingCalibration`
        first if the nominal ones are suspect).
    measured_intensity:
        Detected weight per launched photon at each optode.
    props:
        Medium optical properties.
    detector_area:
        Collection area in mm² used to convert the model's reflectance
        density (mm⁻²) to an expected intensity.

    Returns
    -------
    Per-detector sensitivity factors (1 = perfectly calibrated).  In a
    real instrument these fold fibre coupling, filter and photodiode
    efficiencies — exactly the quantities the paper wants to calibrate.
    """
    spacings = np.asarray(spacings, dtype=np.float64)
    measured = np.asarray(measured_intensity, dtype=np.float64)
    if spacings.shape != measured.shape:
        raise ValueError("spacings and intensities must have equal shapes")
    if detector_area <= 0:
        raise ValueError(f"detector_area must be > 0, got {detector_area}")
    expected = reflectance_farrell(spacings, props) * detector_area
    if (expected <= 0).any():  # pragma: no cover - farrell is positive
        raise RuntimeError("model predicts non-positive intensity")
    return measured / expected
