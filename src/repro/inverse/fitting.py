"""Inverse problem: recover optical properties from reflectance data.

The paper's motivation (§1): "A forward model of the propagation of light
through the head is useful in solving the inverse problem in optical
imaging studies."  This module is that inverse step for the homogeneous
semi-infinite case: given radially resolved diffuse reflectance R(rho)
(measured, or produced by our own Monte Carlo engine), recover µa and µs′
by fitting the Farrell diffusion model.

Fitting happens in log space — R(rho) spans decades, and multiplicative
(gain) errors are the physical noise model of an optical measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from ..diffusion.theory import reflectance_farrell
from ..tissue.optical import OpticalProperties

__all__ = ["FitResult", "fit_optical_properties", "mu_a_from_slope"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of an optical-property fit.

    Attributes
    ----------
    mu_a, mu_s_reduced:
        Recovered absorption and reduced scattering coefficients (mm⁻¹).
    amplitude:
        Multiplicative gain between data and model (detector sensitivity ×
        source power); 1 for perfectly calibrated data.
    residual_rms:
        RMS of the log-space residuals at the optimum.
    n_evaluations:
        Forward-model evaluations spent.
    """

    mu_a: float
    mu_s_reduced: float
    amplitude: float
    residual_rms: float
    n_evaluations: int

    def properties(
        self, g: float = 0.9, n: float = 1.4
    ) -> OpticalProperties:
        """The recovered medium as an :class:`OpticalProperties`."""
        return OpticalProperties.from_reduced(
            mu_a=self.mu_a, mu_s_reduced=self.mu_s_reduced, g=g, n=n
        )


def fit_optical_properties(
    rho: np.ndarray,
    r_measured: np.ndarray,
    *,
    n: float = 1.4,
    g: float = 0.9,
    initial: tuple[float, float] = (0.01, 1.0),
    fit_amplitude: bool = True,
) -> FitResult:
    """Fit (µa, µs′) — and optionally a gain — to measured R(rho).

    Parameters
    ----------
    rho, r_measured:
        Radial positions (mm) and reflectance values (any consistent
        units; an amplitude factor absorbs the absolute scale).  Points
        with non-positive reflectance are rejected.
    n, g:
        Refractive index and anisotropy assumed for the medium (the
        diffusion model needs n; g only enters via µs = µs′/(1−g) in the
        returned properties).
    initial:
        Starting (µa, µs′) guess in mm⁻¹.
    fit_amplitude:
        Also fit a multiplicative gain (recommended for real data whose
        absolute calibration is unknown).

    Notes
    -----
    Identifiability: with an unknown amplitude, µa is pinned by the far-rho
    exponential slope and µs′ by the near-rho shape, so the fit needs data
    spanning at least a few 1/µeff in rho.
    """
    rho = np.asarray(rho, dtype=np.float64)
    r_measured = np.asarray(r_measured, dtype=np.float64)
    if rho.shape != r_measured.shape or rho.ndim != 1:
        raise ValueError("rho and r_measured must be 1-D arrays of equal length")
    if rho.size < 3:
        raise ValueError(f"need >= 3 data points, got {rho.size}")
    if (rho <= 0).any():
        raise ValueError("all rho must be > 0")
    if (r_measured <= 0).any():
        raise ValueError("all reflectance values must be > 0 (log-space fit)")

    log_data = np.log(r_measured)

    def model_log(mu_a: float, mu_s_red: float) -> np.ndarray:
        props = OpticalProperties.from_reduced(
            mu_a=mu_a, mu_s_reduced=mu_s_red, g=g, n=n
        )
        return np.log(reflectance_farrell(rho, props))

    if fit_amplitude:
        def residuals(params: np.ndarray) -> np.ndarray:
            mu_a, mu_s_red, log_amp = params
            return model_log(mu_a, mu_s_red) + log_amp - log_data

        x0 = np.array([initial[0], initial[1], 0.0])
        bounds = ([1e-6, 1e-3, -20.0], [10.0, 100.0, 20.0])
    else:
        def residuals(params: np.ndarray) -> np.ndarray:
            mu_a, mu_s_red = params
            return model_log(mu_a, mu_s_red) - log_data

        x0 = np.asarray(initial, dtype=np.float64)
        bounds = ([1e-6, 1e-3], [10.0, 100.0])

    result = least_squares(residuals, x0=x0, bounds=bounds, method="trf")
    if not result.success:  # pragma: no cover - scipy rarely fails here
        raise RuntimeError(f"optical-property fit failed: {result.message}")

    mu_a, mu_s_red = float(result.x[0]), float(result.x[1])
    amplitude = float(np.exp(result.x[2])) if fit_amplitude else 1.0
    rms = float(np.sqrt(np.mean(result.fun**2)))
    return FitResult(
        mu_a=mu_a,
        mu_s_reduced=mu_s_red,
        amplitude=amplitude,
        residual_rms=rms,
        n_evaluations=int(result.nfev),
    )


def mu_a_from_slope(
    rho: np.ndarray,
    r_measured: np.ndarray,
    mu_s_reduced: float,
) -> float:
    """Quick µa estimate from the asymptotic slope of ln(rho² R).

    At large rho, ``ln(rho^2 R) ~ -mu_eff * rho`` with
    ``mu_eff = sqrt(3 mu_a (mu_a + mu_s'))``; given µs′, invert for µa.
    Amplitude-free (slopes ignore gain), so it is the classic first
    estimate fed to the full fit.
    """
    rho = np.asarray(rho, dtype=np.float64)
    r_measured = np.asarray(r_measured, dtype=np.float64)
    if rho.size < 2:
        raise ValueError("need >= 2 points for a slope")
    if mu_s_reduced <= 0:
        raise ValueError(f"mu_s_reduced must be > 0, got {mu_s_reduced}")
    slope = np.polyfit(rho, np.log(rho**2 * r_measured), 1)[0]
    mu_eff = -slope
    if mu_eff <= 0:
        raise ValueError("reflectance does not decay with rho; cannot estimate mu_a")
    # mu_eff^2 = 3 mu_a (mu_a + mu_s') -> quadratic in mu_a.
    disc = mu_s_reduced**2 + 4.0 * mu_eff**2 / 3.0
    return float((-mu_s_reduced + np.sqrt(disc)) / 2.0)
