"""Text and PGM rendering of density maps (the repo's "figures").

Without a plotting dependency, Fig. 3 and Fig. 4 are regenerated as ASCII
heat maps on stdout (what the benches print) and optionally as binary PGM
images on disk (viewable in any image tool).
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

__all__ = ["ascii_heatmap", "save_pgm"]

#: Density ramp from blank to solid.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    density: np.ndarray,
    *,
    width: int = 64,
    height: int = 32,
    log_scale: bool = True,
    transpose: bool = True,
) -> str:
    """Render a 2-D density map as an ASCII heat map.

    Parameters
    ----------
    density:
        2-D non-negative array, indexed ``[x, z]`` by repo convention.
    width, height:
        Character-cell resolution; the map is block-averaged down to it.
    log_scale:
        Compress the dynamic range with log10 (path densities span many
        decades).
    transpose:
        Render with z increasing downwards (the physical orientation of a
        tissue cross-section); the input's second axis becomes rows.
    """
    if density.ndim != 2:
        raise ValueError(f"density must be 2-D, got shape {density.shape}")
    if (density < 0).any():
        raise ValueError("density must be non-negative")
    img = density.T if transpose else density
    rows, cols = img.shape
    height = min(height, rows)
    width = min(width, cols)

    # Block-average to the character grid.
    row_edges = np.linspace(0, rows, height + 1).astype(int)
    col_edges = np.linspace(0, cols, width + 1).astype(int)
    cells = np.zeros((height, width))
    for i in range(height):
        for j in range(width):
            block = img[row_edges[i]:row_edges[i + 1], col_edges[j]:col_edges[j + 1]]
            cells[i, j] = block.mean() if block.size else 0.0

    peak = cells.max()
    if peak <= 0:
        return "\n".join(" " * width for _ in range(height))
    if log_scale:
        floor = peak * 1e-4
        with np.errstate(divide="ignore"):
            scaled = np.log10(np.maximum(cells, floor) / floor) / math.log10(peak / floor)
    else:
        scaled = cells / peak
    levels = np.clip((scaled * (len(_RAMP) - 1)).round().astype(int), 0, len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[v] for v in row) for row in levels)


def save_pgm(path: str | Path, density: np.ndarray, *, log_scale: bool = True) -> Path:
    """Write a 2-D density map as an 8-bit binary PGM image.

    Returns the path written.  Orientation matches :func:`ascii_heatmap`
    (depth downwards).
    """
    if density.ndim != 2:
        raise ValueError(f"density must be 2-D, got shape {density.shape}")
    img = density.T
    peak = img.max()
    if peak <= 0:
        pixels = np.zeros(img.shape, dtype=np.uint8)
    elif log_scale:
        floor = peak * 1e-4
        with np.errstate(divide="ignore"):
            scaled = np.log10(np.maximum(img, floor) / floor) / math.log10(peak / floor)
        pixels = (scaled * 255).astype(np.uint8)
    else:
        pixels = (img / peak * 255).astype(np.uint8)

    path = Path(path)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + pixels.tobytes())
    return path
