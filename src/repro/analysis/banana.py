"""Banana-shape analysis of detected-path sensitivity profiles.

Fig. 3 of the paper: with a laser (pencil) source and a detector on the
same surface, the density of detected photon paths in the x-z plane forms
the classic "banana" — shallow at the source and the detector, deepest
midway between them.  ``banana_metrics`` quantifies that shape from the
recorded path grid so benches and tests can assert it instead of
eyeballing a plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..detect.records import GridSpec
from .threshold import threshold_top_weight

__all__ = ["xz_slice", "cylindrical_map", "BananaMetrics", "banana_metrics"]


def cylindrical_map(
    grid: np.ndarray, spec: GridSpec, n_rho: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project a path grid onto cylindrical (rho, z) coordinates.

    For an annular (ring) detector the geometry is azimuthally symmetric, so
    folding all azimuths onto the radial coordinate multiplies the usable
    statistics by the full ring circumference.  The returned map has the
    same banana interpretation as an x-z slice, with the source at rho = 0
    and the detector at rho = ring radius.

    Returns
    -------
    rho_centres, z_centres, density:
        ``density[i, j]`` is the summed path weight of voxels whose centre
        radius falls in radial bin ``i`` at depth bin ``j`` (depth bins are
        the grid's own z voxels).
    """
    if grid.shape != spec.shape:
        raise ValueError(f"grid shape {grid.shape} != spec shape {spec.shape}")
    x = spec.axis_centres(0)
    y = spec.axis_centres(1)
    z = spec.axis_centres(2)
    rho_vox = np.hypot(x[:, None], y[None, :])  # (nx, ny)
    rho_max = float(rho_vox.max())
    if n_rho is None:
        n_rho = spec.shape[0]
    edges = np.linspace(0.0, rho_max * (1 + 1e-12), n_rho + 1)
    bin_of = np.clip(np.digitize(rho_vox.ravel(), edges) - 1, 0, n_rho - 1)
    flat = grid.reshape(-1, spec.shape[2])  # (nx*ny, nz)
    density = np.zeros((n_rho, spec.shape[2]))
    np.add.at(density, bin_of, flat)
    rho_centres = 0.5 * (edges[:-1] + edges[1:])
    return rho_centres, z, density


def xz_slice(grid: np.ndarray, spec: GridSpec, *, y_halfwidth: float | None = None) -> np.ndarray:
    """Project the path grid onto the x-z plane.

    Sums over the y voxels within ``|y| <= y_halfwidth`` (default: one
    voxel either side of the source-detector axis), returning a 2-D array
    indexed ``[x, z]``.
    """
    if grid.shape != spec.shape:
        raise ValueError(f"grid shape {grid.shape} != spec shape {spec.shape}")
    y_centres = spec.axis_centres(1)
    if y_halfwidth is None:
        dy = spec.voxel_size[1]
        y_halfwidth = 1.5 * dy
    mask = np.abs(y_centres) <= y_halfwidth
    if not mask.any():
        raise ValueError("y_halfwidth selects no voxel rows")
    return grid[:, mask, :].sum(axis=1)


@dataclass(frozen=True)
class BananaMetrics:
    """Quantified shape of a detected-path density map.

    All coordinates in mm in the grid's frame (source at x=0, detector at
    ``detector_x``, depth increasing with z).

    Attributes
    ----------
    depth_at_source, depth_at_midpoint, depth_at_detector:
        Weight-averaged depth of the (thresholded) path density in thin
        vertical bands at the source, the midpoint, and the detector.
    max_band_depth:
        The deepest band-averaged depth along the profile.
    argmax_depth_x:
        x position of that deepest band.
    endpoint_surface_weight:
        Fraction of (thresholded) weight in the top voxel layer within the
        source and detector bands — near 1 for a proper banana whose ends
        taper to the optodes.
    total_weight:
        Total path weight in the grid (pre-threshold).
    """

    depth_at_source: float
    depth_at_midpoint: float
    depth_at_detector: float
    max_band_depth: float
    argmax_depth_x: float
    endpoint_surface_weight: float
    total_weight: float

    @property
    def is_banana(self) -> bool:
        """The defining shape test: midpoint runs deeper than both ends."""
        return (
            self.depth_at_midpoint > self.depth_at_source
            and self.depth_at_midpoint > self.depth_at_detector
        )


def banana_metrics(
    grid: np.ndarray,
    spec: GridSpec,
    detector_x: float,
    *,
    threshold_fraction: float = 0.75,
    band_halfwidth: float | None = None,
) -> BananaMetrics:
    """Compute :class:`BananaMetrics` from a detected-path voxel grid.

    Parameters
    ----------
    grid, spec:
        The path grid (``tally.path_grid``) and its spec.
    detector_x:
        x coordinate of the detector centre (source assumed at x=0).
    threshold_fraction:
        Passed to :func:`~repro.analysis.threshold.threshold_top_weight`
        before shape measurement — Fig. 3 is "after thresholding".
    band_halfwidth:
        Half-width in mm of the vertical measurement bands (default: one
        voxel).
    """
    if grid.shape != spec.shape:
        raise ValueError(f"grid shape {grid.shape} != spec shape {spec.shape}")
    total = float(grid.sum())
    slab = xz_slice(grid, spec)  # (x, z)
    mask = threshold_top_weight(slab, threshold_fraction)
    density = np.where(mask, slab, 0.0)

    x_centres = spec.axis_centres(0)
    z_centres = spec.axis_centres(2)
    dx = spec.voxel_size[0]
    if band_halfwidth is None:
        band_halfwidth = dx

    def band_depth(x0: float) -> float:
        band = np.abs(x_centres - x0) <= band_halfwidth
        if not band.any():
            raise ValueError(f"band at x={x0} is outside the grid")
        column = density[band, :].sum(axis=0)
        w = column.sum()
        return float((column * z_centres).sum() / w) if w > 0 else 0.0

    depth_source = band_depth(0.0)
    depth_mid = band_depth(0.5 * detector_x)
    depth_det = band_depth(detector_x)

    # Depth profile along x: weight-averaged z per x column.
    col_w = density.sum(axis=1)
    with np.errstate(invalid="ignore"):
        col_depth = np.where(col_w > 0, (density * z_centres[None, :]).sum(axis=1) / np.maximum(col_w, 1e-300), 0.0)
    populated = col_w > 0
    if populated.any():
        deepest = int(np.argmax(np.where(populated, col_depth, -np.inf)))
        max_band_depth = float(col_depth[deepest])
        argmax_x = float(x_centres[deepest])
    else:
        max_band_depth = 0.0
        argmax_x = 0.0

    # Fraction of endpoint-band weight sitting in the shallowest voxel layers.
    surface_rows = max(1, spec.shape[2] // 10)
    endpoint_band = (np.abs(x_centres) <= band_halfwidth) | (
        np.abs(x_centres - detector_x) <= band_halfwidth
    )
    band_w = density[endpoint_band, :].sum()
    surf_w = density[endpoint_band, :surface_rows].sum()
    endpoint_surface = float(surf_w / band_w) if band_w > 0 else 0.0

    return BananaMetrics(
        depth_at_source=depth_source,
        depth_at_midpoint=depth_mid,
        depth_at_detector=depth_det,
        max_band_depth=max_band_depth,
        argmax_depth_x=argmax_x,
        endpoint_surface_weight=endpoint_surface,
        total_weight=total,
    )
