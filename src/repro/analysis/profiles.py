"""Spatial sensitivity profiles and penetration-depth relationships.

The paper (§1): "The relationship between penetration depth and
source/detector spacing can be modelled which is an important factor for
optode geometry and positioning."  ``penetration_vs_spacing`` runs that
study: for a list of optode spacings it simulates the detected photons and
reports their mean penetration depth and DPF, the quantities NIRS optode
design works from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import SimulationConfig
from ..core.simulation import Simulation
from ..detect.detector import AnnularDetector
from ..sources.pencil import PencilBeam
from ..tissue.layer import LayerStack

__all__ = ["SpacingPoint", "penetration_vs_spacing"]


@dataclass(frozen=True)
class SpacingPoint:
    """Detected-photon statistics at one source-detector spacing."""

    spacing: float
    detected_count: int
    detected_weight: float
    mean_penetration_depth: float
    mean_pathlength: float
    dpf: float


def penetration_vs_spacing(
    stack: LayerStack,
    spacings: list[float],
    n_photons: int,
    *,
    ring_halfwidth: float = 1.0,
    seed: int = 0,
    base_config: SimulationConfig | None = None,
) -> list[SpacingPoint]:
    """Mean penetration depth and DPF as a function of optode spacing.

    One simulation per spacing, each with an annular detector of half-width
    ``ring_halfwidth`` centred on that spacing.  Spacings must be positive
    and leave a positive inner ring radius.
    """
    if n_photons <= 0:
        raise ValueError(f"n_photons must be > 0, got {n_photons}")
    points = []
    for rho in spacings:
        if rho <= ring_halfwidth:
            raise ValueError(
                f"spacing {rho} must exceed ring_halfwidth {ring_halfwidth}"
            )
        detector = AnnularDetector(rho - ring_halfwidth, rho + ring_halfwidth)
        if base_config is None:
            config = SimulationConfig(stack=stack, source=PencilBeam(), detector=detector)
        else:
            config = base_config.with_(stack=stack, detector=detector)
        tally = Simulation(config).run(n_photons, seed=seed)
        points.append(
            SpacingPoint(
                spacing=rho,
                detected_count=tally.detected_count,
                detected_weight=tally.detected_weight,
                mean_penetration_depth=tally.penetration_depth.mean,
                mean_pathlength=tally.pathlength.mean,
                dpf=tally.differential_pathlength_factor(rho),
            )
        )
    return points
