"""Layer-wise analysis of head-model simulations (the Fig. 4 claims).

The paper's Fig. 4 discussion makes three claims about the Table 1 head
model that this module turns into numbers:

1. "Most of the photons are reflected before they enter the CSF" —
   :func:`penetration_fractions` reports, per layer, the fraction of
   launched photons whose lifetime maximum depth stops inside that layer.
2. "however some do penetrate all the way into the white matter tissue" —
   the same report's white-matter row is non-zero.
3. Light deposition decays with depth across the stack —
   :func:`layer_report` combines absorbed energy and penetration counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tally import Tally
from ..tissue.layer import LayerStack

__all__ = ["LayerRow", "penetration_fractions", "layer_report", "depth_profile"]


@dataclass(frozen=True)
class LayerRow:
    """One row of the Fig. 4 layer report."""

    name: str
    z_top: float
    z_bottom: float
    absorbed_fraction: float
    reached_fraction: float
    stopped_fraction: float


def penetration_fractions(tally: Tally, stack: LayerStack) -> dict[str, dict[str, float]]:
    """Per-layer penetration statistics from the penetration histogram.

    Returns ``{layer: {"reached": r, "stopped": s}}`` where *reached* is the
    fraction of photons whose maximum depth entered the layer and *stopped*
    the fraction whose maximum depth lies inside it.  Requires the tally to
    have been recorded with ``penetration_bins`` deep enough to cover the
    stack (depths beyond the histogram are clipped into its last bin, which
    belongs to the deepest layer they can represent).
    """
    hist = tally.penetration_hist
    if hist is None:
        raise ValueError("tally has no penetration histogram; enable penetration_bins")
    total = hist.total
    if total <= 0:
        raise ValueError("penetration histogram is empty")
    centres = hist.centres
    counts = hist.counts

    out: dict[str, dict[str, float]] = {}
    for i, layer in enumerate(stack):
        top = stack.layer_top(i)
        bottom = stack.layer_bottom(i)
        reached = counts[centres >= top].sum() / total
        stopped = counts[(centres >= top) & (centres < bottom)].sum() / total
        out[layer.name] = {"reached": float(reached), "stopped": float(stopped)}
    return out


def layer_report(tally: Tally, stack: LayerStack) -> list[LayerRow]:
    """Combined per-layer report: absorption + penetration."""
    pens = penetration_fractions(tally, stack)
    absorbed = tally.absorbed_fraction
    rows = []
    for i, layer in enumerate(stack):
        p = pens[layer.name]
        rows.append(
            LayerRow(
                name=layer.name,
                z_top=stack.layer_top(i),
                z_bottom=stack.layer_bottom(i),
                absorbed_fraction=float(absorbed[i]),
                reached_fraction=p["reached"],
                stopped_fraction=p["stopped"],
            )
        )
    return rows


def depth_profile(grid: np.ndarray, spec) -> tuple[np.ndarray, np.ndarray]:
    """Collapse a voxel grid to a depth profile (z centres, weight per mm).

    Works for both absorption and path grids; the profile is normalised per
    unit depth so different granularities are comparable.
    """
    if grid.shape != spec.shape:
        raise ValueError(f"grid shape {grid.shape} != spec shape {spec.shape}")
    z = spec.axis_centres(2)
    dz = spec.voxel_size[2]
    return z, grid.sum(axis=(0, 1)) / dz
