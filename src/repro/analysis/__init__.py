"""Analysis of Monte Carlo results: banana profiles, layer statistics, rendering."""

from .banana import BananaMetrics, banana_metrics, cylindrical_map, xz_slice
from .convergence import ConvergencePoint, convergence_curve, photons_for_precision
from .layers import LayerRow, depth_profile, layer_report, penetration_fractions
from .profiles import SpacingPoint, penetration_vs_spacing
from .render import ascii_heatmap, save_pgm
from .threshold import threshold_relative, threshold_top_weight
from .uncertainty import (
    ScalarEstimate,
    detection_estimate,
    estimate,
    reflectance_estimate,
)

__all__ = [
    "BananaMetrics",
    "ConvergencePoint",
    "ScalarEstimate",
    "LayerRow",
    "SpacingPoint",
    "ascii_heatmap",
    "banana_metrics",
    "convergence_curve",
    "cylindrical_map",
    "depth_profile",
    "detection_estimate",
    "estimate",
    "layer_report",
    "penetration_fractions",
    "penetration_vs_spacing",
    "photons_for_precision",
    "reflectance_estimate",
    "save_pgm",
    "threshold_relative",
    "threshold_top_weight",
    "xz_slice",
]
