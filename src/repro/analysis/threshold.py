"""Thresholding of path-density maps.

Fig. 3 of the paper shows "the most common paths taken by the photons,
after thresholding": the raw detected-path voxel grid spans many orders of
magnitude, and only the voxels carrying most of the weight form the
banana.  Two standard reductions are provided:

* :func:`threshold_top_weight` — keep the smallest set of voxels that
  together carry a given fraction of the total weight (the "most common
  paths" reading);
* :func:`threshold_relative` — keep voxels above a fraction of the peak
  value (the display-threshold reading).
"""

from __future__ import annotations

import numpy as np

__all__ = ["threshold_top_weight", "threshold_relative"]


def threshold_top_weight(grid: np.ndarray, fraction: float) -> np.ndarray:
    """Boolean mask of the heaviest voxels carrying ``fraction`` of the weight.

    Voxels are ranked by weight; the mask keeps the top-ranked voxels until
    their cumulative weight first reaches ``fraction`` of the grid total.
    An all-zero grid yields an all-False mask.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
    flat = grid.reshape(-1)
    total = flat.sum()
    if total <= 0:
        return np.zeros(grid.shape, dtype=bool)
    order = np.argsort(flat)[::-1]
    cumulative = np.cumsum(flat[order])
    n_keep = int(np.searchsorted(cumulative, fraction * total)) + 1
    mask = np.zeros(flat.shape, dtype=bool)
    mask[order[:n_keep]] = True
    return mask.reshape(grid.shape)


def threshold_relative(grid: np.ndarray, level: float) -> np.ndarray:
    """Boolean mask of voxels with weight >= ``level`` * max(grid)."""
    if not 0.0 < level <= 1.0:
        raise ValueError(f"level must lie in (0, 1], got {level}")
    peak = grid.max()
    if peak <= 0:
        return np.zeros(grid.shape, dtype=bool)
    return grid >= level * peak
