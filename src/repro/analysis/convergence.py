"""Monte Carlo convergence studies.

"To generate useful results billions of photon paths must be simulated"
(paper, §1) — i.e. the photon budget is set by a target statistical error.
This module turns a distributed run's per-task results into the convergence
curve behind that statement: the standard error of any per-photon quantity
as a function of cumulative photons, its fitted 1/sqrt(N) law, and the
budget needed for a requested precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.tally import Tally
from ..distributed.datamanager import RunReport

__all__ = ["ConvergencePoint", "convergence_curve", "photons_for_precision"]


@dataclass(frozen=True)
class ConvergencePoint:
    """Running estimate after a prefix of the task stream."""

    n_photons: int
    value: float
    standard_error: float


def convergence_curve(
    report: RunReport,
    per_photon: Callable[[Tally], float],
    *,
    min_tasks: int = 2,
) -> list[ConvergencePoint]:
    """Running mean and SE of a per-photon quantity over the task stream.

    Point ``i`` uses tasks ``0..i`` (at least ``min_tasks``); the SE is the
    weighted between-task standard error, as in
    :func:`repro.analysis.uncertainty.estimate`.
    """
    tasks = report.task_results
    if len(tasks) < min_tasks:
        raise ValueError(f"need >= {min_tasks} tasks, got {len(tasks)}")
    values = np.array([per_photon(r.tally) for r in tasks])
    weights = np.array([r.tally.n_launched for r in tasks], dtype=np.float64)

    points = []
    for i in range(min_tasks - 1, len(tasks)):
        w = weights[: i + 1]
        v = values[: i + 1]
        total = w.sum()
        mean = float((w * v).sum() / total)
        var_between = float((w * (v - mean) ** 2).sum() / total)
        se = math.sqrt(var_between / i) if i > 0 else math.inf
        points.append(
            ConvergencePoint(n_photons=int(total), value=mean, standard_error=se)
        )
    return points


def photons_for_precision(
    report: RunReport,
    per_photon: Callable[[Tally], float],
    target_relative_error: float,
) -> int:
    """Photon budget needed to reach a target relative standard error.

    Extrapolates the measured SE with the 1/sqrt(N) law:
    ``N_target = N_now * (SE_now / SE_target)^2``.  This is the calculation
    that turns "we need 0.1% error bars" into the paper's "billions of
    photon paths".
    """
    if not 0.0 < target_relative_error < 1.0:
        raise ValueError(
            f"target_relative_error must lie in (0, 1), got {target_relative_error}"
        )
    curve = convergence_curve(report, per_photon)
    last = curve[-1]
    if last.value == 0:
        raise ValueError("quantity is zero; relative precision is undefined")
    current_rel = last.standard_error / abs(last.value)
    scale = (current_rel / target_relative_error) ** 2
    return int(math.ceil(last.n_photons * scale))
