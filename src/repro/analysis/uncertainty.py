"""Monte Carlo uncertainty from the task decomposition.

Because a distributed run is a sum over independent equal-size tasks, the
between-task scatter of any per-photon quantity estimates its Monte Carlo
standard error for free — no extra bookkeeping in the kernels.  This is
how a production campaign decides when 10⁹ photons are enough (the paper's
"billions of photon paths must be simulated" is exactly a variance
requirement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..core.tally import Tally
from ..distributed.datamanager import RunReport

__all__ = ["ScalarEstimate", "estimate", "reflectance_estimate", "detection_estimate"]


@dataclass(frozen=True)
class ScalarEstimate:
    """A Monte Carlo estimate with its standard error.

    Attributes
    ----------
    value:
        The pooled (all-photons) estimate.
    standard_error:
        Between-task standard error of the pooled value.
    n_tasks:
        Independent tasks the scatter was estimated from.
    """

    value: float
    standard_error: float
    n_tasks: int

    @property
    def relative_error(self) -> float:
        """SE / |value| (inf when the value is 0)."""
        return self.standard_error / abs(self.value) if self.value else math.inf

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval at z sigmas."""
        return (self.value - z * self.standard_error, self.value + z * self.standard_error)


def estimate(
    report: RunReport, per_photon: Callable[[Tally], float]
) -> ScalarEstimate:
    """Estimate a per-photon scalar and its SE from a distributed report.

    Parameters
    ----------
    report:
        A completed :class:`~repro.distributed.datamanager.RunReport`.
    per_photon:
        Maps a tally to the per-photon quantity of interest (e.g.
        ``lambda t: t.diffuse_reflectance``).  Must be an average over
        photons so that task values are i.i.d. estimates of the same mean.

    Notes
    -----
    Task values are weighted by task photon counts (the last task may be
    short); the SE uses the weighted between-task variance with the
    standard n/(n-1) small-sample correction.  Needs >= 2 tasks.
    """
    tasks = report.task_results
    if len(tasks) < 2:
        raise ValueError(
            f"need >= 2 tasks to estimate a standard error, got {len(tasks)}"
        )
    values = [per_photon(r.tally) for r in tasks]
    weights = [r.tally.n_launched for r in tasks]
    total = sum(weights)
    if total == 0:
        raise ValueError("report contains no photons")
    mean = sum(w * v for w, v in zip(weights, values)) / total
    # Weighted between-task variance of the mean.
    var_between = sum(w * (v - mean) ** 2 for w, v in zip(weights, values)) / total
    n = len(tasks)
    se = math.sqrt(var_between / (n - 1))
    return ScalarEstimate(value=mean, standard_error=se, n_tasks=n)


def reflectance_estimate(report: RunReport) -> ScalarEstimate:
    """Diffuse reflectance with its Monte Carlo standard error."""
    return estimate(report, lambda t: t.diffuse_reflectance)


def detection_estimate(report: RunReport) -> ScalarEstimate:
    """Detected weight per launched photon, with standard error."""
    return estimate(
        report, lambda t: t.detected_weight / t.n_launched if t.n_launched else 0.0
    )
