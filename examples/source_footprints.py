#!/usr/bin/env python
"""Source-footprint study: delta vs Gaussian vs uniform illumination.

The paper (Sect. 4): "We found that the source illumination footprint has
an effect on the distribution of photons in the head and that lasers do
produce a small beam in a highly scattering medium."  This example
quantifies both statements by comparing the three supported source types
on the same medium, plus the effect of pathlength gating on detection.

Run:
    python examples/source_footprints.py [n_photons]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import AnnularDetector, GridSpec, PathlengthGate
from repro.io import format_table
from repro.sources import GaussianBeam, PencilBeam, UniformDisc
from repro.tissue import white_matter


def lateral_spread(grid: np.ndarray, spec: GridSpec) -> float:
    """RMS lateral radius of the absorbed-energy cloud (mm)."""
    x = spec.axis_centres(0)
    y = spec.axis_centres(1)
    w_x = grid.sum(axis=(1, 2))
    w_y = grid.sum(axis=(0, 2))
    var = ((x**2 * w_x).sum() + (y**2 * w_y).sum()) / (w_x.sum() + w_y.sum())
    return float(np.sqrt(var))


def main() -> None:
    n_photons = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    stack = white_matter()
    spec = GridSpec.cube(32, 8.0, 8.0)

    sources = {
        "delta (laser)": PencilBeam(),
        "Gaussian sigma=2mm": GaussianBeam(sigma=2.0),
        "uniform r=4mm": UniformDisc(radius=4.0),
    }

    rows = []
    for name, source in sources.items():
        config = SimulationConfig(
            stack=stack,
            source=source,
            roulette=RouletteConfig(threshold=1e-2, boost=10),
            records=RecordConfig(absorption_grid=spec),
        )
        tally = Simulation(config).run(n_photons, seed=1)
        rows.append([
            name,
            lateral_spread(tally.absorption_grid, spec),
            tally.diffuse_reflectance,
            tally.penetration_depth.mean,
        ])
        print(f"simulated {name}")

    print("\nEffect of the illumination footprint (white matter):")
    print(format_table(
        ["source", "RMS lateral spread (mm)", "diffuse reflectance",
         "mean detected depth (mm)"],
        rows, float_format="{:.3f}",
    ))
    print(
        "\nThe laser's absorption cloud stays within ~"
        f"{rows[0][1]:.1f} mm of the axis in a medium with transport mean "
        f"free path {stack[0].properties.transport_mean_free_path:.2f} mm — "
        "'lasers do produce a small beam in a highly scattering medium'."
    )

    # Gated detection: only photons within a pathlength window are counted,
    # emulating pulsed source/detector operation (Sect. 3 of the paper).
    print("\nPathlength-gated detection (laser source, detector at 4 mm):")
    gate_rows = []
    for gate, label in [
        (None, "ungated"),
        (PathlengthGate(0.0, 30.0), "0-30 mm"),
        (PathlengthGate(30.0, 80.0), "30-80 mm"),
        (PathlengthGate(80.0, 1e9), ">80 mm"),
    ]:
        config = SimulationConfig(
            stack=stack,
            source=PencilBeam(),
            detector=AnnularDetector(3.5, 4.5),
            gate=gate,
            roulette=RouletteConfig(threshold=1e-2, boost=10),
        )
        tally = Simulation(config).run(n_photons, seed=2)
        gate_rows.append([
            label,
            tally.detected_count,
            tally.pathlength.mean if tally.detected_count else float("nan"),
            tally.penetration_depth.mean if tally.detected_count else float("nan"),
        ])
    print(format_table(
        ["gate", "detected", "mean pathlength (mm)", "mean max depth (mm)"],
        gate_rows, float_format="{:.2f}",
    ))
    print("\nLonger-pathlength gates select photons that dived deeper — the "
          "mechanism time-gated NIRS uses to reject shallow light.")


if __name__ == "__main__":
    main()
