#!/usr/bin/env python
"""Quickstart: simulate light transport in the Table 1 adult-head model.

Launches a laser (pencil) beam at the scalp, traces 20 000 photons through
the five-layer head model of the paper's Table 1, and prints the energy
balance, per-layer absorption and detected-photon statistics at a 30 mm
source-detector spacing — the core quantities a NIRS modelling study needs.

Run:
    python examples/quickstart.py [n_photons]
"""

from __future__ import annotations

import sys
import time

from repro.api import RunRequest, run
from repro.core import RecordConfig, RouletteConfig, SimulationConfig
from repro.detect import AnnularDetector
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import adult_head


def main() -> None:
    n_photons = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    spacing = 30.0  # mm, a typical adult NIRS interoptode distance

    stack = adult_head()
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        detector=AnnularDetector(spacing - 2.0, spacing + 2.0),
        # A slightly aggressive roulette keeps runtimes laptop-friendly;
        # it is unbiased (see repro.core.roulette).
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(penetration_bins=(40.0, 200)),
    )

    print(f"Tracing {n_photons:,} photons through the adult-head model ...")
    start = time.perf_counter()
    # The unified facade: the same request runs serially here, but adding
    # workers=4 (or mode="serve") changes only the execution substrate,
    # never the physics.  progress=True draws a live bar on stderr.
    report = run(RunRequest(config=config, n_photons=n_photons, seed=42, progress=True))
    tally = report.tally
    elapsed = time.perf_counter() - start
    print(f"done in {elapsed:.1f} s ({n_photons / elapsed:,.0f} photons/s)\n")

    print("Energy balance")
    print(format_table(
        ["quantity", "fraction of launched energy"],
        [
            ["specular reflectance", tally.specular_reflectance],
            ["diffuse reflectance", tally.diffuse_reflectance],
            ["absorbed", tally.total_absorbed_fraction],
            ["transmitted", tally.transmittance],
            ["balance (should be 1)", tally.energy_balance],
        ],
        float_format="{:.4f}",
    ))

    print("\nAbsorption by tissue layer (Table 1 model)")
    rows = [
        [layer.name, fraction]
        for layer, fraction in zip(stack, tally.absorbed_fraction)
    ]
    print(format_table(["layer", "absorbed fraction"], rows, float_format="{:.4f}"))

    print(f"\nDetector at {spacing:.0f} mm: {tally.detected_count} photons detected")
    if tally.detected_count:
        print(f"  mean optical pathlength : {tally.pathlength.mean:8.1f} mm")
        print(f"  differential pathlength : {tally.differential_pathlength_factor(spacing):8.2f} (DPF)")
        print(f"  mean penetration depth  : {tally.penetration_depth.mean:8.1f} mm")


if __name__ == "__main__":
    main()
