#!/usr/bin/env python
"""Fig. 4 scenario: photon penetration through the layered adult head.

Reproduces the paper's layered-brain-tissue experiment: the Table 1 stack
(scalp / skull / CSF / grey matter / white matter), a laser source, and the
questions the paper answers with Fig. 4 — how far do photons get, where is
the light absorbed, and does increasing the optode spacing buy white-matter
sensitivity?

Run:
    python examples/adult_head_nirs.py [n_photons]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import layer_report, penetration_vs_spacing
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import adult_head


def main() -> None:
    n_photons = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    stack = adult_head()

    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=3e-2, boost=20),
        max_steps=60_000,
        records=RecordConfig(penetration_bins=(40.0, 400)),
    )

    print(f"Tracing {n_photons:,} photons through the Table 1 adult head ...")
    start = time.perf_counter()
    tally = Simulation(config).run(n_photons, seed=3)
    print(f"done in {time.perf_counter() - start:.1f} s\n")

    print("Per-layer report (the Fig. 4 story):")
    rows = [
        [r.name, r.z_top, "inf" if r.z_bottom == float("inf") else r.z_bottom,
         r.absorbed_fraction, r.reached_fraction, r.stopped_fraction]
        for r in layer_report(tally, stack)
    ]
    print(format_table(
        ["layer", "top (mm)", "bottom (mm)", "absorbed", "reached", "stopped"],
        rows, float_format="{:.4f}",
    ))
    wm = layer_report(tally, stack)[-1]
    print(
        f"\n'Most of the photons are reflected before they enter the CSF' "
        f"(stopped above CSF: "
        f"{sum(r.stopped_fraction for r in layer_report(tally, stack)[:2]):.1%}), "
        f"\n'however some do penetrate all the way into the white matter' "
        f"(reached white matter: {wm.reached_fraction:.2%})."
    )

    # Penetration depth vs optode spacing (Sect. 1 of the paper).
    print("\nDetected-photon penetration vs source-detector spacing:")
    points = penetration_vs_spacing(
        stack,
        spacings=[10.0, 20.0, 30.0],
        n_photons=n_photons,
        ring_halfwidth=2.0,
        seed=8,
        base_config=config,
    )
    rows = [
        [p.spacing, p.detected_count, p.mean_penetration_depth, p.dpf]
        for p in points
    ]
    print(format_table(
        ["spacing (mm)", "detected", "mean max depth (mm)", "DPF"],
        rows, float_format="{:.2f}",
    ))


if __name__ == "__main__":
    main()
