#!/usr/bin/env python
"""The inverse pipeline: from simulated measurements to tissue properties.

The paper's motivation (§1): the forward Monte Carlo model exists to solve
the *inverse* problem — recovering optical properties and chromophore
concentrations from surface measurements — and its future work is optode
calibration.  This example runs the whole loop on synthetic data produced
by our own engine:

1. simulate radially resolved reflectance R(rho) of an "unknown" medium;
2. fit (µa, µs') with the diffusion model (`repro.inverse.fitting`);
3. quantify a haemoglobin change from two-wavelength attenuation data
   using the MC-derived DPF (`repro.inverse.mbll`);
4. detect a probe-position error from time-of-flight data
   (`repro.inverse.calibration`).

Run:
    python examples/inverse_calibration.py [n_photons]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import AnnularDetector, mean_time_of_flight, radial_reflectance
from repro.inverse import (
    calibrate_spacing,
    fit_optical_properties,
    haemoglobin_changes,
)
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


def main() -> None:
    n_photons = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000

    # The "unknown" tissue the instrument is probing.
    truth = OpticalProperties.from_reduced(mu_a=0.05, mu_s_reduced=2.0, g=0.9, n=1.0)
    stack = LayerStack.homogeneous(truth)
    roulette = RouletteConfig(threshold=1e-3, boost=10)

    # --- 1 + 2: reflectance measurement and property fit ---------------------
    print(f"[1/3] simulating R(rho) with {n_photons:,} photons ...")
    config = SimulationConfig(
        stack=stack, source=PencilBeam(), roulette=roulette,
        records=RecordConfig(reflectance_rho_bins=(12.0, 24)),
    )
    tally = Simulation(config).run(n_photons, seed=1)
    rho, r_mc = radial_reflectance(tally)
    window = (rho >= 1.5) & (r_mc > 0)
    fit = fit_optical_properties(rho[window], r_mc[window], n=1.0, g=0.9)
    print(format_table(
        ["quantity", "truth", "recovered"],
        [
            ["mu_a (mm^-1)", truth.mu_a, fit.mu_a],
            ["mu_s' (mm^-1)", truth.mu_s_reduced, fit.mu_s_reduced],
        ],
        float_format="{:.4f}",
    ))

    # --- 3: chromophore quantification with the MC DPF -----------------------
    print("\n[2/3] quantifying a haemoglobin change via the MBLL ...")
    spacing = 6.0
    det_config = SimulationConfig(
        stack=stack, source=PencilBeam(),
        detector=AnnularDetector(spacing - 0.5, spacing + 0.5),
        roulette=roulette,
    )
    det_tally = Simulation(det_config).run(n_photons, seed=2)
    dpf = det_tally.differential_pathlength_factor(spacing)
    print(f"  MC DPF at {spacing:.0f} mm: {dpf:.2f} "
          f"({det_tally.detected_count} photons detected)")

    # Synthetic activation: HbO2 +2 uM, HbR -1 uM; generate the delta-OD the
    # instrument would see, then invert it with the MC DPF.
    from repro.inverse import EXTINCTION_HB

    truth_change = {"HbO2": 2e-6, "HbR": -1e-6}
    dpf_by_wl = {760: dpf, 850: dpf}
    delta_od = {
        wl: (EXTINCTION_HB[wl]["HbO2"] * truth_change["HbO2"]
             + EXTINCTION_HB[wl]["HbR"] * truth_change["HbR"]) * spacing * dpf_by_wl[wl]
        for wl in (760, 850)
    }
    result = haemoglobin_changes(delta_od, rho=spacing, dpf=dpf_by_wl)
    print(format_table(
        ["chromophore", "truth (M)", "recovered (M)"],
        [
            ["delta HbO2", truth_change["HbO2"], result.delta_hbo2],
            ["delta HbR", truth_change["HbR"], result.delta_hbr],
        ],
        float_format="{:.3g}",
    ))

    # --- 4: probe-position calibration ----------------------------------------
    print("\n[3/3] detecting a 2 mm probe-position error from time of flight ...")
    true_offset = 2.0
    nominal = np.array([3.0, 5.0, 7.0])
    measured = []
    for rho_nom in nominal:
        rho_true = rho_nom + true_offset
        cfg = SimulationConfig(
            stack=stack, source=PencilBeam(),
            detector=AnnularDetector(rho_true - 0.5, rho_true + 0.5),
            roulette=roulette,
        )
        t = Simulation(cfg).run(max(n_photons // 2, 20_000), seed=int(rho_nom))
        measured.append(mean_time_of_flight(t))
    cal = calibrate_spacing(nominal, np.array(measured), truth)
    print(f"  recovered spacing offset: {cal.offset:+.2f} mm "
          f"(true {true_offset:+.2f} mm)")
    print(f"  corrected spacings      : {cal.corrected(nominal).round(2)}")


if __name__ == "__main__":
    main()
