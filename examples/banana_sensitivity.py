#!/usr/bin/env python
"""Fig. 3 scenario: the banana-shaped sensitivity profile of detected paths.

Reproduces the paper's homogeneous-white-matter experiment: a laser source
on the surface, a detector a few millimetres away, and the voxelised paths
of *detected* photons accumulated at user-defined granularity (the paper
uses 50 cubed).  The thresholded path density forms the classic banana.

Run:
    python examples/banana_sensitivity.py [n_photons] [spacing_mm]

Writes ``banana.pgm`` (viewable in any image tool) next to the script.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.analysis import (
    ascii_heatmap,
    banana_metrics,
    save_pgm,
    threshold_top_weight,
    xz_slice,
)
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import DiscDetector, GridSpec
from repro.sources import PencilBeam
from repro.tissue import white_matter


def main() -> None:
    n_photons = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    spacing = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    granularity = 50  # the paper's Fig. 3 grid resolution

    spec = GridSpec.banana_box(granularity, spacing)
    config = SimulationConfig(
        stack=white_matter(),
        source=PencilBeam(),  # the "laser source" of Fig. 3
        detector=DiscDetector(spacing, 0.0, radius=0.75),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(path_grid=spec),
    )

    print(
        f"Tracing {n_photons:,} photons in homogeneous white matter "
        f"(detector at {spacing:.1f} mm, granularity {granularity}^3) ..."
    )
    start = time.perf_counter()
    tally = Simulation(config).run(n_photons, seed=7)
    print(f"done in {time.perf_counter() - start:.1f} s; "
          f"{tally.detected_count} photons reached the detector\n")

    slab = xz_slice(tally.path_grid, spec)
    thresholded = slab * threshold_top_weight(slab, 0.75)
    print("Detected-path density, x-z plane (source left, detector right,")
    print("depth downwards; 'after thresholding' as in the paper's Fig. 3):\n")
    print(ascii_heatmap(thresholded, width=60, height=24))

    metrics = banana_metrics(tally.path_grid, spec, detector_x=spacing)
    print("\nBanana metrics:")
    print(f"  mean depth under source   : {metrics.depth_at_source:5.2f} mm")
    print(f"  mean depth at midpoint    : {metrics.depth_at_midpoint:5.2f} mm")
    print(f"  mean depth under detector : {metrics.depth_at_detector:5.2f} mm")
    print(f"  deepest point at x        : {metrics.argmax_depth_x:5.2f} mm")
    print(f"  is a banana               : {metrics.is_banana}")

    out = Path(__file__).with_name("banana.pgm")
    save_pgm(out, slab)
    print(f"\nWrote {out}")


if __name__ == "__main__":
    main()
