#!/usr/bin/env python
"""Table 2 scenario: the 150-machine heterogeneous non-dedicated cluster.

Simulates the paper's production run — 10^9 photons on the Table 2 census —
and compares scheduling policies on that cluster: the platform's pull-based
self-scheduling, naive static blocks, rate-weighted static assignment, and
the genetic-algorithm scheduler of the authors' companion paper (ref [4]).

Run:
    python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    GAConfig,
    PHOTONS_PER_MFLOP,
    TABLE2_CLASSES,
    UniformAvailability,
    ga_schedule,
    simulate_run,
    static_block,
    static_weighted,
    table2_cluster,
    total_mflops,
)
from repro.io import format_table

N_PHOTONS = 1_000_000_000
TASK_SIZE = 200_000


def main() -> None:
    print("Table 2 census:")
    rows = [
        [c.count, f"{c.mflops_min:g}-{c.mflops_max:g}", c.ram_mb, c.os, c.processor]
        for c in TABLE2_CLASSES
    ]
    print(format_table(["#", "Mflop/s", "RAM (MB)", "O/S", "Processor"], rows))

    cluster = table2_cluster(np.random.default_rng(0))
    print(f"\n{len(cluster)} machines, {total_mflops(cluster):.0f} Mflop/s aggregate")

    availability = UniformAvailability(0.7, 1.0)
    n_tasks = N_PHOTONS // TASK_SIZE

    def sim(assignment=None, seed=1):
        return simulate_run(
            cluster, N_PHOTONS, TASK_SIZE,
            availability=availability, seed=seed,
            static_assignment=assignment,
        )

    print(f"\nSimulating {N_PHOTONS:.0e} photons ({n_tasks} tasks of {TASK_SIZE:,}):\n")

    pull = sim()
    block = sim(static_block(n_tasks, cluster))
    weighted = sim(static_weighted(n_tasks, cluster))

    ga = ga_schedule(
        [TASK_SIZE] * n_tasks, cluster, PHOTONS_PER_MFLOP,
        config=GAConfig(population=30, generations=40, seed=0),
    )
    ga_run = sim(ga.assignment)

    rows = [
        ["self-scheduling (paper)", pull.makespan_seconds / 3600,
         pull.mean_utilisation],
        ["static block", block.makespan_seconds / 3600, block.mean_utilisation],
        ["static weighted", weighted.makespan_seconds / 3600,
         weighted.mean_utilisation],
        ["GA scheduler (ref [4])", ga_run.makespan_seconds / 3600,
         ga_run.mean_utilisation],
    ]
    print(format_table(
        ["policy", "makespan (h)", "mean utilisation"], rows, float_format="{:.3f}"
    ))
    print(
        f"\nThe paper reports 'approximately 2 hours' per 10^9-photon "
        f"simulation on this cluster; self-scheduling gives "
        f"{pull.makespan_seconds / 3600:.2f} h here."
    )
    print(f"GA predicted makespan (no noise): {ga.makespan / 3600:.2f} h "
          f"after {ga.generations} generations")


if __name__ == "__main__":
    main()
