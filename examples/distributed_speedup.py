#!/usr/bin/env python
"""Fig. 2 scenario: parallel speedup of the distributed Monte Carlo platform.

Two views of the same experiment:

1. **Simulated cluster** (the paper's testbed is simulated by a
   discrete-event model): speedup and efficiency of 1-60 homogeneous
   Pentium-IV class machines running a 100M-photon simulation, with the
   paper's headline number — ≥97% efficiency at 60 processors.
2. **Real local run**: the identical DataManager/worker protocol executed
   on local processes, demonstrating that the merged physics is bit-equal
   to a serial run regardless of worker count.

Run:
    python examples/distributed_speedup.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import RunRequest, run
from repro.cluster import speedup_curve
from repro.core import SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties


def simulated_curve() -> None:
    print("=== Simulated homogeneous cluster (Fig. 2) ===")
    ks = [1, 5, 10, 20, 30, 40, 50, 60]
    points = speedup_curve(ks, n_photons=100_000_000, task_size=100_000)
    rows = [[p.k, p.pk_seconds, p.speedup, p.efficiency] for p in points]
    print(format_table(["k", "Pk (s)", "speedup", "efficiency"], rows,
                       float_format="{:.4g}"))
    eff60 = next(p for p in points if p.k == 60).efficiency
    print(f"\nEfficiency at 60 processors: {eff60:.1%} "
          f"(paper: 'over 97% efficiency')")


def real_local_run() -> None:
    print("\n=== Real distributed run on local processes ===")
    # A fast test medium keeps this demo snappy.
    props = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
    config = SimulationConfig(
        stack=LayerStack.homogeneous(props), source=PencilBeam()
    )
    # One request, two substrates — only workers/backend differ, so the
    # facade guarantees the merged physics cannot.
    base = dict(config=config, n_photons=20_000, seed=0, task_size=2_000)

    start = time.perf_counter()
    serial = run(RunRequest(**base))
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run(RunRequest(**base, workers=2, backend="process"))
    t_parallel = time.perf_counter() - start

    identical = all(
        (np.isnan(v) and np.isnan(parallel.tally.summary()[k])) or
        v == parallel.tally.summary()[k]
        for k, v in serial.tally.summary().items()
    )
    print(f"serial   : {t_serial:6.1f} s  Rd = {serial.tally.diffuse_reflectance:.6f}")
    print(f"2 workers: {t_parallel:6.1f} s  Rd = {parallel.tally.diffuse_reflectance:.6f}")
    print(f"merged tallies bit-identical: {identical}")
    print("per-worker utilisation:")
    for worker, row in parallel.per_worker().items():
        print(f"  {worker}: {int(row['tasks'])} tasks, "
              f"{row['photons']:.0f} photons, {row['busy_seconds']:.1f} s busy")


if __name__ == "__main__":
    simulated_curve()
    real_local_run()
