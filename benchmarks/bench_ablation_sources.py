"""Ablation — source illumination footprint.

"We found that the source illumination footprint has an effect on the
distribution of photons in the head": delta vs Gaussian vs uniform sources
on the same medium, measured by the lateral spread of deposited energy.
"""

from __future__ import annotations

import numpy as np
from conftest import scaled

from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import GridSpec
from repro.io import format_table
from repro.sources import GaussianBeam, PencilBeam, UniformDisc
from repro.tissue import white_matter

SPEC = GridSpec.cube(32, 10.0, 10.0)


def lateral_rms(grid: np.ndarray) -> float:
    x = SPEC.axis_centres(0)
    y = SPEC.axis_centres(1)
    w_x = grid.sum(axis=(1, 2))
    w_y = grid.sum(axis=(0, 2))
    return float(np.sqrt(
        ((x**2 * w_x).sum() + (y**2 * w_y).sum()) / (w_x.sum() + w_y.sum())
    ))


def run_source(source):
    config = SimulationConfig(
        stack=white_matter(),
        source=source,
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(absorption_grid=SPEC),
    )
    return Simulation(config).run(scaled(8_000), seed=19)


def test_ablation_source_footprints(benchmark, report):
    pencil = benchmark.pedantic(lambda: run_source(PencilBeam()), rounds=1, iterations=1)
    gaussian = run_source(GaussianBeam(sigma=2.0))
    uniform = run_source(UniformDisc(radius=4.0))

    spreads = {
        "delta (laser)": lateral_rms(pencil.absorption_grid),
        "Gaussian sigma=2": lateral_rms(gaussian.absorption_grid),
        "uniform r=4": lateral_rms(uniform.absorption_grid),
    }
    report("\n=== Ablation: source footprint vs photon distribution ===")
    report(format_table(
        ["source", "RMS lateral spread of absorbed energy (mm)"],
        [[k, v] for k, v in spreads.items()],
        float_format="{:.3f}",
    ))

    # --- the paper's observations ---------------------------------------------
    # 1. footprint matters: wider sources spread the distribution.
    assert spreads["Gaussian sigma=2"] > 1.3 * spreads["delta (laser)"]
    assert spreads["uniform r=4"] > 1.3 * spreads["delta (laser)"]
    # 2. "lasers do produce a small beam in a highly scattering medium":
    #    the laser's absorbed-energy cloud stays within ~2 mm of the axis —
    #    the diffusion length scale 1/mu_eff, i.e. tens of (tiny) transport
    #    mean free paths but a "small beam" on the tissue scale.
    props = white_matter()[0].properties
    l_star = props.transport_mean_free_path
    diffusion_length = 1.0 / props.effective_attenuation
    report(f"\nlaser spread = {spreads['delta (laser)']:.2f} mm "
           f"(= {spreads['delta (laser)'] / l_star:.1f} l*, "
           f"diffusion length 1/mu_eff = {diffusion_length:.2f} mm)")
    assert spreads["delta (laser)"] < 2.0 * diffusion_length
    # 3. reflectance is footprint-independent (energy argument).
    assert abs(pencil.diffuse_reflectance - uniform.diffuse_reflectance) < 0.02
