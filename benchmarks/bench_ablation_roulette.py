"""Ablation — Russian-roulette aggressiveness.

The Fig. 1 "survive roulette" step is unbiased by construction: the
threshold only trades variance against runtime.  This bench sweeps the
threshold and verifies that the physics is invariant while runtime falls.
"""

from __future__ import annotations

import time

import pytest
from conftest import scaled

from repro.core import RouletteConfig, Simulation, SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

#: Moderately diffusive medium so roulette actually matters.
PROPS = OpticalProperties(mu_a=0.1, mu_s=10.0, g=0.8, n=1.4)
THRESHOLDS = [1e-4, 1e-3, 1e-2, 5e-2]


def sweep():
    rows = []
    for threshold in THRESHOLDS:
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS),
            source=PencilBeam(),
            roulette=RouletteConfig(threshold=threshold, boost=10),
        )
        t0 = time.perf_counter()
        tally = Simulation(config).run(scaled(20_000), seed=23)
        elapsed = time.perf_counter() - t0
        rows.append((threshold, elapsed, tally))
    return rows


def test_ablation_roulette(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report("\n=== Ablation: Russian-roulette threshold ===")
    report(format_table(
        ["threshold", "time (s)", "R_d", "A", "net roulette weight/photon"],
        [[thr, t, tally.diffuse_reflectance, tally.total_absorbed_fraction,
          tally.roulette_net_weight / tally.n_launched]
         for thr, t, tally in rows],
        float_format="{:.4g}",
    ))

    tallies = {thr: tally for thr, _t, tally in rows}
    times = {thr: t for thr, t, _tally in rows}
    reference = tallies[1e-4]

    # --- unbiasedness: R_d invariant across 2.5 orders of magnitude ---------
    for thr in THRESHOLDS[1:]:
        assert tallies[thr].diffuse_reflectance == pytest.approx(
            reference.diffuse_reflectance, rel=0.03
        )
        assert tallies[thr].total_absorbed_fraction == pytest.approx(
            reference.total_absorbed_fraction, rel=0.03
        )
    # --- and it buys runtime -------------------------------------------------
    assert times[5e-2] < times[1e-4]
    # Energy stays booked exactly (balance includes the roulette term).
    for tally in tallies.values():
        assert tally.energy_balance == pytest.approx(1.0, abs=1e-9)
