"""Fig. 4 — simulated photon paths through the layered brain tissue.

"A model of the different layers of tissue in and around the brain has
been created (as described in Table 1).  Fig. 4 shows the results of this
simulation.  Most of the photons are reflected before they enter the CSF,
however some do penetrate all the way into the white matter tissue, which
is of most interest to researchers."
"""

from __future__ import annotations

from conftest import scaled

from repro.analysis import ascii_heatmap, depth_profile, layer_report
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import GridSpec
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import adult_head


def run_head():
    stack = adult_head()
    spec = GridSpec.cube(50, 25.0, 25.0)
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=3e-2, boost=20),
        max_steps=60_000,
        records=RecordConfig(
            absorption_grid=spec,
            penetration_bins=(40.0, 400),
        ),
    )
    tally = Simulation(config).run(scaled(15_000), seed=4)
    return tally, stack, spec


def test_fig4_layers(benchmark, report):
    tally, stack, spec = benchmark.pedantic(run_head, rounds=1, iterations=1)

    report("\n=== Fig. 4: photon paths with the Table 1 layers of brain tissue ===")
    rows = [
        [r.name, r.z_top,
         "inf" if r.z_bottom == float("inf") else f"{r.z_bottom:g}",
         r.absorbed_fraction, r.reached_fraction, r.stopped_fraction]
        for r in layer_report(tally, stack)
    ]
    report(format_table(
        ["layer", "top (mm)", "bottom (mm)", "absorbed", "reached", "stopped"],
        rows, float_format="{:.4f}",
    ))

    slab = tally.absorption_grid[:, 22:28, :].sum(axis=1)
    report("\nabsorbed energy, x-z cross-section (surface at top, 50 mm deep):")
    report(ascii_heatmap(slab, width=60, height=24))

    z, profile = depth_profile(tally.absorption_grid, spec)
    report("\ndeposited energy vs depth (per mm, log-scaled bar chart):")
    import math
    peak = profile.max()
    for zi in range(0, len(z), 2):
        if profile[zi] > 0:
            bar = "#" * max(1, int(40 * (math.log10(profile[zi] / peak) + 4) / 4))
        else:
            bar = ""
        report(f"  z={z[zi]:5.1f} mm |{bar}")

    # --- assertions: the Fig. 4 claims ---------------------------------------
    fractions = {r.name: r for r in layer_report(tally, stack)}
    stopped_before_csf = (
        fractions["scalp"].stopped_fraction + fractions["skull"].stopped_fraction
    )
    report(f"\nstopped before the CSF      : {stopped_before_csf:.1%} "
           f"('most of the photons are reflected before they enter the CSF')")
    report(f"reached white matter        : "
           f"{fractions['white_matter'].reached_fraction:.2%} "
           f"('some do penetrate all the way into the white matter')")

    assert stopped_before_csf > 0.5
    assert fractions["white_matter"].reached_fraction > 0.0
    assert fractions["white_matter"].reached_fraction < 0.2
    # Penetration is monotone: deeper layers are reached by fewer photons.
    reached = [r.reached_fraction for r in layer_report(tally, stack)]
    assert reached == sorted(reached, reverse=True)
    # Absorption is dominated by the superficial layers.
    absorbed = tally.absorbed_fraction
    assert absorbed[0] > absorbed[3] and absorbed[0] > absorbed[4]
    # Energy is conserved through all five layers and both boundaries.
    assert abs(tally.energy_balance - 1.0) < 1e-9
