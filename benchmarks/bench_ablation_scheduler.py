"""Ablation — scheduling policy on the heterogeneous Table 2 cluster.

The paper points to its ref [4] (GA task scheduling) "for further
discussion on the efficiency of a system using heterogeneous processors".
This bench compares four policies on the Table 2 cluster: pull-based
self-scheduling (the platform's policy), naive static blocks, rate-weighted
static assignment, and the GA scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    GAConfig,
    PHOTONS_PER_MFLOP,
    UniformAvailability,
    ga_schedule,
    simulate_run,
    simulate_run_guided,
    static_block,
    static_weighted,
    table2_cluster,
)
from repro.io import format_table

N_PHOTONS = 200_000_000
TASK_SIZE = 200_000


def run_policies():
    cluster = table2_cluster(np.random.default_rng(0))
    availability = UniformAvailability(0.7, 1.0)
    n_tasks = N_PHOTONS // TASK_SIZE

    def sim(assignment=None):
        return simulate_run(
            cluster, N_PHOTONS, TASK_SIZE,
            availability=availability, seed=2, static_assignment=assignment,
        ).makespan_seconds

    ga = ga_schedule(
        [TASK_SIZE] * n_tasks, cluster, PHOTONS_PER_MFLOP,
        config=GAConfig(population=24, generations=30, seed=0),
    )
    fine = simulate_run(
        cluster, N_PHOTONS, TASK_SIZE // 8,
        availability=availability, seed=2,
    ).makespan_seconds
    guided = simulate_run_guided(
        cluster, N_PHOTONS, availability=availability, seed=2
    ).makespan_seconds
    return {
        "self-scheduling (paper)": sim(),
        "self-scheduling, 8x finer chunks": fine,
        "guided self-scheduling": guided,
        "static block": sim(static_block(n_tasks, cluster)),
        "static weighted": sim(static_weighted(n_tasks, cluster)),
        "GA (ref [4])": sim(ga.assignment),
    }


def test_ablation_schedulers(benchmark, report):
    makespans = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    report("\n=== Ablation: scheduling policy on the Table 2 cluster ===")
    report(format_table(
        ["policy", "makespan (s)", "vs self-scheduling"],
        [[k, v, v / makespans["self-scheduling (paper)"]] for k, v in makespans.items()],
        float_format="{:.4g}",
    ))

    # --- expected ordering -----------------------------------------------------
    # Naive static blocks collapse on a 29-vs-209 Mflop/s cluster.
    assert makespans["static block"] > 2.0 * makespans["self-scheduling (paper)"]
    # Weighted static fixes most of it...
    assert makespans["static weighted"] < 0.6 * makespans["static block"]
    # ...and the GA at least matches the weighted heuristic it was seeded with.
    assert makespans["GA (ref [4])"] <= makespans["static weighted"] * 1.10
    # Self-scheduling pays a tail-straggler penalty when a slow machine
    # pulls a full-size chunk late in the run — the heterogeneity problem
    # the paper's ref [4] targets.  It stays within ~2x of the best static
    # plan, and shrinking the chunk recovers most of the gap.
    best_static = min(makespans["static weighted"], makespans["GA (ref [4])"])
    assert makespans["self-scheduling (paper)"] < 2.0 * best_static
    assert (
        makespans["self-scheduling, 8x finer chunks"]
        < makespans["self-scheduling (paper)"]
    )
    assert makespans["self-scheduling, 8x finer chunks"] < 1.25 * best_static
    # Guided self-scheduling (dynamic chunk tapering) beats every policy:
    # it keeps the low overhead of big early chunks AND kills the tail.
    assert makespans["guided self-scheduling"] <= min(
        makespans["self-scheduling (paper)"],
        makespans["static weighted"],
        makespans["GA (ref [4])"],
    )
