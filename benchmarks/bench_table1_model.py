"""Table 1 — thickness and optical properties of tissue in the adult head.

Regenerates the paper's Table 1 from the model objects and asserts the
encoded coefficients match the publication exactly.
"""

from __future__ import annotations

import pytest

from repro.io import format_table
from repro.tissue import TABLE1_PROPERTIES, adult_head

#: The paper's Table 1, transcribed: (µs' mm^-1, µa mm^-1, thickness note).
PAPER_TABLE1 = {
    "scalp": (1.9, 0.018, "0.3-1 cm"),
    "skull": (1.6, 0.016, "0.5-1 cm"),
    "csf": (0.25, 0.004, "2"),
    "grey_matter": (2.2, 0.036, "4"),
    "white_matter": (9.1, 0.014, "-"),
}


def test_table1_model(benchmark, report):
    stack = benchmark(adult_head)

    rows = []
    for layer in stack:
        mu_s_red, mu_a, _ = TABLE1_PROPERTIES[layer.name]
        thickness = "-" if layer.is_semi_infinite else f"{layer.thickness:g} mm"
        rows.append([
            layer.name, thickness, mu_s_red, mu_a,
            layer.properties.mu_s, layer.properties.g, layer.properties.n,
        ])
    report("\n=== Table 1: Thickness and optical properties (NIR) of adult head ===")
    report(format_table(
        ["tissue", "thickness", "µs' (mm⁻¹)", "µa (mm⁻¹)",
         "µs (mm⁻¹)", "g", "n"],
        rows,
    ))
    report("(µs' and µa exactly as printed in the paper; µs = µs'/(1-g) with "
           "g = 0.9, n = 1.4 per the paper's sources — see DESIGN.md)")

    # --- assertions: the encoded model IS the paper's table -----------------
    for name, (mu_s_red, mu_a, _note) in PAPER_TABLE1.items():
        layer = next(l for l in stack if l.name == name)
        assert layer.properties.mu_s_reduced == pytest.approx(mu_s_red)
        assert layer.properties.mu_a == pytest.approx(mu_a)
    assert stack[-1].is_semi_infinite  # white matter: "-"
    assert len(stack) == 5
