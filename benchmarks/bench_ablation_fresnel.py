"""Ablation — probabilistic vs classical boundary physics.

The paper's application supports "refraction and internal reflection
(classical physics or probabilistic methods)".  Both must agree on every
physical observable (they differ only in variance); this bench measures
both and checks the agreement.
"""

from __future__ import annotations

from conftest import scaled

import pytest

from repro.core import RouletteConfig, Simulation, SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

#: A strongly mismatched boundary (n = 1.5) maximises the difference
#: between the two treatments.
PROPS = OpticalProperties(mu_a=0.5, mu_s=5.0, g=0.7, n=1.5)


def run_mode(mode: str):
    config = SimulationConfig(
        stack=LayerStack.homogeneous(PROPS, 3.0),
        source=PencilBeam(),
        boundary_mode=mode,
        roulette=RouletteConfig(threshold=1e-3, boost=10),
    )
    return Simulation(config).run(scaled(30_000), seed=17)


def test_ablation_fresnel_modes(benchmark, report):
    probabilistic = benchmark.pedantic(
        lambda: run_mode("probabilistic"), rounds=1, iterations=1
    )
    classical = run_mode("classical")

    report("\n=== Ablation: boundary physics (classical vs probabilistic) ===")
    rows = []
    for name, t in [("probabilistic", probabilistic), ("classical", classical)]:
        rows.append([
            name, t.diffuse_reflectance, t.transmittance,
            t.total_absorbed_fraction, t.energy_balance,
        ])
    report(format_table(
        ["mode", "R_d", "T_d", "A", "energy balance"], rows, float_format="{:.5f}"
    ))

    # --- both modes describe the same physics ---------------------------------
    assert probabilistic.energy_balance == pytest.approx(1.0, abs=1e-9)
    assert classical.energy_balance == pytest.approx(1.0, abs=1e-9)
    assert probabilistic.diffuse_reflectance == pytest.approx(
        classical.diffuse_reflectance, rel=0.05
    )
    assert probabilistic.transmittance == pytest.approx(
        classical.transmittance, rel=0.10
    )
    assert probabilistic.total_absorbed_fraction == pytest.approx(
        classical.total_absorbed_fraction, rel=0.05
    )
