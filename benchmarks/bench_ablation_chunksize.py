"""Ablation — self-scheduling chunk size vs parallel efficiency.

The 97%-efficiency point of Fig. 2 is a chunk-size trade-off: big chunks
amortise the per-task master/network overhead but strand slow finishers at
the end of the run (quantisation stragglers); small chunks balance load but
queue on the single-threaded master.  This bench sweeps the task size at
k = 60 and locates the sweet spot.
"""

from __future__ import annotations

from repro.cluster import efficiency, homogeneous_cluster, simulate_run
from repro.io import format_table

N_PHOTONS = 100_000_000
K = 60
TASK_SIZES = [10_000, 50_000, 100_000, 500_000, 2_000_000]


def sweep():
    p1 = {
        ts: simulate_run(homogeneous_cluster(1), N_PHOTONS, ts).makespan_seconds
        for ts in TASK_SIZES
    }
    rows = []
    for ts in TASK_SIZES:
        pk = simulate_run(homogeneous_cluster(K), N_PHOTONS, ts).makespan_seconds
        rows.append((ts, N_PHOTONS // ts, pk, efficiency(p1[ts], pk, K)))
    return rows


def test_ablation_chunk_size(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(f"\n=== Ablation: task chunk size at k = {K} processors ===")
    report(format_table(
        ["photons/task", "n_tasks", f"P{K} (s)", "efficiency"],
        [[ts, nt, pk, eff] for ts, nt, pk, eff in rows],
        float_format="{:.4g}",
    ))

    effs = {ts: eff for ts, _nt, _pk, eff in rows}
    # The mid-range chunk hits the paper's operating point.
    assert effs[100_000] >= 0.97
    # Oversized chunks strand stragglers: fewer tasks than a few per worker
    # costs double-digit efficiency.
    assert effs[2_000_000] < effs[100_000]
    # Both extremes are worse than the sweet spot.
    best = max(effs.values())
    assert effs[100_000] >= best - 0.02
