"""Ablation — the low-scattering CSF layer.

The paper (§2): "the cerebrospinal fluid, a layer of low scattering
properties 'sandwiched' between highly scattering tissue [...] has a
significant effect on light propagation" and "confines the penetration of
light to the shallow region of the grey matter, with few photons probing
the white matter."

This bench simulates the Table 1 head as published and a counterfactual
head whose CSF is replaced by grey-matter-like scattering, then compares
where the light goes.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.analysis import penetration_fractions
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties, adult_head


def no_csf_head() -> LayerStack:
    """Table 1 head with the CSF's scattering raised to grey-matter level."""
    base = adult_head()
    layers = []
    for layer in base:
        if layer.name == "csf":
            grey_like = OpticalProperties.from_reduced(
                mu_a=layer.properties.mu_a, mu_s_reduced=2.2, g=0.9, n=1.4
            )
            layers.append(Layer("csf_scattering", grey_like, layer.thickness))
        else:
            layers.append(layer)
    return LayerStack(layers)


def run(stack: LayerStack):
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=3e-2, boost=20),
        max_steps=60_000,
        records=RecordConfig(penetration_bins=(40.0, 400)),
    )
    return Simulation(config).run(scaled(8_000), seed=29)


def test_ablation_csf_layer(benchmark, report):
    with_csf_stack = adult_head()
    without_csf_stack = no_csf_head()
    with_csf = benchmark.pedantic(lambda: run(with_csf_stack), rounds=1, iterations=1)
    without_csf = run(without_csf_stack)

    pen_with = penetration_fractions(with_csf, with_csf_stack)
    pen_without = penetration_fractions(without_csf, without_csf_stack)

    report("\n=== Ablation: the low-scattering CSF layer ===")
    rows = []
    for layer_with, layer_without in zip(with_csf_stack, without_csf_stack):
        rows.append([
            layer_with.name,
            pen_with[layer_with.name]["reached"],
            pen_without[layer_without.name]["reached"],
        ])
    report(format_table(
        ["layer", "reached (CSF as published)", "reached (CSF scattering)"],
        rows, float_format="{:.4f}",
    ))

    csf_reach = pen_with["csf"]["reached"]
    grey_reach = pen_with["grey_matter"]["reached"]
    report(f"\nwith the clear CSF, {grey_reach / csf_reach:.0%} of the photons "
           f"that enter the CSF go on to reach the grey matter (light guiding)")

    # --- the paper's CSF claims ----------------------------------------------
    # 1. The clear CSF transmits almost everything that enters it into the
    #    grey matter; a scattering CSF bounces a measurable share back.
    pass_through_clear = pen_with["grey_matter"]["reached"] / pen_with["csf"]["reached"]
    pass_through_scatter = (
        pen_without["grey_matter"]["reached"] / pen_without["csf_scattering"]["reached"]
    )
    assert pass_through_clear > pass_through_scatter
    assert pass_through_clear > 0.9
    # 2. In both heads, few photons probe the white matter.
    assert pen_with["white_matter"]["reached"] < 0.2
    # 3. Energy conserved in both.
    assert with_csf.energy_balance == pytest.approx(1.0, abs=1e-9)
    assert without_csf.energy_balance == pytest.approx(1.0, abs=1e-9)
