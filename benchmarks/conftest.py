"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper: it *prints* the
rows/series the paper reports (straight to the terminal, bypassing capture)
and *asserts* the qualitative shape — who wins, by roughly what factor,
where the crossovers fall.  Absolute numbers are not expected to match the
2006 testbed (see EXPERIMENTS.md).

Photon budgets scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0): set it below 1 for smoke runs, above 1 for tighter
statistics.
"""

from __future__ import annotations

import os

import pytest


def scaled(n: int) -> int:
    """Apply the global photon-budget scale factor."""
    return max(1000, int(n * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))


@pytest.fixture
def report(capsys):
    """Print through pytest's capture so bench output reaches the terminal."""

    def _print(*args, **kwargs):
        with capsys.disabled():
            print(*args, **kwargs)

    return _print
