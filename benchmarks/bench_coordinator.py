"""Coordinator throughput — per-task pickles vs span dispatch + codec.

The paper's DataManager deserialises and merges *every* worker's result;
at high task counts that single thread is the scaling ceiling (the classic
master bottleneck behind the Fig. 2 efficiency roll-off).  PR 5 attacks it
twice: tree-aligned spans folded worker-side cut the number of payloads
and coordinator merges by the span factor, and the zero-copy tally codec
replaces per-result pickle reconstruction with ``np.frombuffer`` views.

This bench isolates the coordinator loop: identical leaf tallies are fed
through both pipelines at 64 / 512 / 4096 tasks on the grid workload, and
the coordinator-side deserialised bytes, merge CPU and wall time are
compared.  The numbers land in ``BENCH_coordinator.json`` for CI to
archive; the smoke threshold (≥5× byte reduction at 512 tasks) guards the
headline claim.
"""

from __future__ import annotations

import copy
import json
import pickle
import time
from pathlib import Path

from conftest import scaled

from repro.core import (
    PairwiseReducer,
    RecordConfig,
    SimulationConfig,
    SpanFolder,
    aligned_spans,
    run_photons,
    task_rng,
)
from repro.detect import GridSpec
from repro.io import format_table
from repro.io.codec import decode_tally, encode_tally
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
#: The issue's grid workload: ~1 MB per task tally, the regime where
#: coordinator-side deserialisation actually dominates.
CONFIG = SimulationConfig(
    stack=LayerStack.homogeneous(PROPS),
    source=PencilBeam(),
    records=RecordConfig(
        absorption_grid=GridSpec(shape=(48, 48, 48), lo=(-5, -5, 0), hi=(5, 5, 10)),
        pathlength_bins=(0.0, 100.0, 64),
    ),
)

TASK_COUNTS = (64, 512, 4096)
SPAN_SIZE = 8


def coordinator_baseline(payload: bytes, n_tasks: int):
    """Pre-PR-5 coordinator: unpickle and merge every per-task result."""
    reducer = PairwiseReducer(n_tasks)
    t0 = time.perf_counter()
    for i in range(n_tasks):
        reducer.add(i, pickle.loads(payload), owned=True)
    wall = time.perf_counter() - t0
    return reducer.result(), {
        "payloads": n_tasks,
        "bytes": n_tasks * len(payload),
        "merge_seconds": reducer.seconds,
        "wall_seconds": wall,
    }


def coordinator_span(partial_payload: bytes, n_tasks: int):
    """PR-5 coordinator: decode one codec buffer per span, merge per span."""
    spans = aligned_spans(n_tasks, SPAN_SIZE)
    reducer = PairwiseReducer(n_tasks)
    t0 = time.perf_counter()
    for start, stop in spans:
        partial = decode_tally(bytearray(partial_payload))
        reducer.add_span(start, stop, partial, owned=True)
    wall = time.perf_counter() - t0
    return reducer.result(), {
        "payloads": len(spans),
        "span_size": SPAN_SIZE,
        "bytes": len(spans) * len(partial_payload),
        "merge_seconds": reducer.seconds,
        "wall_seconds": wall,
    }


def test_coordinator_throughput(benchmark, report):
    photons = max(5, scaled(4000) // 64)
    template = run_photons(CONFIG, photons, task_rng(11, 0))
    task_payload = pickle.dumps(template, protocol=pickle.HIGHEST_PROTOCOL)

    def measure():
        results = {}
        for n_tasks in TASK_COUNTS:
            # Worker-side span fold (its cost moves off the coordinator;
            # every leaf is the template, so one folded partial serves all
            # full-width spans of this run).
            t0 = time.perf_counter()
            folder = SpanFolder(n_tasks, 0, SPAN_SIZE)
            for i in range(SPAN_SIZE):
                folder.add(i, copy.deepcopy(template), owned=True)
            partial_payload = bytes(encode_tally(folder.partial()))
            fold_seconds = time.perf_counter() - t0

            base_tally, base = coordinator_baseline(task_payload, n_tasks)
            span_tally, span = coordinator_span(partial_payload, n_tasks)
            assert span_tally == base_tally  # bit-identical pipelines
            span["worker_fold_seconds"] = fold_seconds
            results[n_tasks] = {"baseline": base, "span_codec": span}
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    report("\n=== Coordinator throughput: per-task pickles vs spans + codec ===")
    rows = []
    for n_tasks, r in results.items():
        base, span = r["baseline"], r["span_codec"]
        rows.append([
            n_tasks,
            base["bytes"] / 2**20,
            span["bytes"] / 2**20,
            base["bytes"] / span["bytes"],
            base["merge_seconds"] * 1e3,
            span["merge_seconds"] * 1e3,
            base["wall_seconds"] * 1e3,
            span["wall_seconds"] * 1e3,
        ])
    report(format_table(
        ["tasks", "pickle MB", "codec MB", "bytes ratio",
         "merge ms (base)", "merge ms (span)",
         "coord ms (base)", "coord ms (span)"],
        rows,
        float_format="{:.3g}",
    ))

    Path("BENCH_coordinator.json").write_text(json.dumps({
        "photons_per_task": photons,
        "span_size": SPAN_SIZE,
        "task_payload_bytes": len(task_payload),
        "runs": {str(n): r for n, r in results.items()},
    }, indent=2))

    # --- the headline claims, guarded at 512 tasks --------------------------
    base, span = results[512]["baseline"], results[512]["span_codec"]
    assert base["bytes"] / span["bytes"] >= 5.0  # ≥5× fewer deserialised bytes
    assert span["merge_seconds"] < base["merge_seconds"]  # parent merge CPU drops
    assert span["payloads"] * SPAN_SIZE == base["payloads"]
