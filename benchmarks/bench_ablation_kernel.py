"""Ablation — scalar reference kernel vs vectorised production kernel.

Measures the throughput gap that justifies the vectorised design and
verifies the two agree on the physics (the scalar kernel is the auditable
transcription of the paper's Fig. 1 pseudocode).
"""

from __future__ import annotations

import time

import pytest
from conftest import scaled

from repro.core import (
    RouletteConfig,
    SimulationConfig,
    run_batch_scalar,
    run_batch_vectorized,
    task_rng,
)
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
CONFIG = SimulationConfig(
    stack=LayerStack.homogeneous(PROPS),
    source=PencilBeam(),
    roulette=RouletteConfig(threshold=1e-3, boost=10),
)


def run_both():
    n_vec = scaled(60_000)
    n_scalar = max(1500, n_vec // 40)

    t0 = time.perf_counter()
    vector = run_batch_vectorized(CONFIG, n_vec, task_rng(1, 0))
    t_vec = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = run_batch_scalar(CONFIG, n_scalar, task_rng(2, 0))
    t_scalar = time.perf_counter() - t0

    return (vector, n_vec / t_vec), (scalar, n_scalar / t_scalar)


def test_ablation_kernels(benchmark, report):
    (vector, vec_rate), (scalar, scalar_rate) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    report("\n=== Ablation: scalar vs vectorised kernel ===")
    report(format_table(
        ["kernel", "photons/s", "R_d", "A", "mean pathlength (mm)"],
        [
            ["vectorised", vec_rate, vector.diffuse_reflectance,
             vector.total_absorbed_fraction, vector.pathlength.mean],
            ["scalar (Fig. 1 reference)", scalar_rate, scalar.diffuse_reflectance,
             scalar.total_absorbed_fraction, scalar.pathlength.mean],
        ],
        float_format="{:.4g}",
    ))
    report(f"\nvectorised speedup over scalar: {vec_rate / scalar_rate:.0f}x")

    # --- agreement and performance ------------------------------------------
    assert vector.diffuse_reflectance == pytest.approx(
        scalar.diffuse_reflectance, rel=0.15
    )
    assert vector.total_absorbed_fraction == pytest.approx(
        scalar.total_absorbed_fraction, rel=0.03
    )
    assert vector.energy_balance == pytest.approx(1.0, abs=1e-9)
    assert scalar.energy_balance == pytest.approx(1.0, abs=1e-9)
    # The vectorised kernel must be at least an order of magnitude faster.
    assert vec_rate > 10 * scalar_rate
