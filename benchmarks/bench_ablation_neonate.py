"""Ablation — adult vs neonatal head (superficial-tissue thickness).

The paper (§2): "Monte Carlo simulations have been used to study the
effect of the superficial tissue thickness, which differs between adult
and neonates" [Fukui/Okada].  This bench runs the Table 1 adult model and
the thinner-layered neonatal variant side by side: the neonate's thin
scalp/skull/CSF let far more light reach the brain — the reason neonatal
NIRS works so much better than adult NIRS.
"""

from __future__ import annotations

import pytest
from conftest import scaled

from repro.analysis import penetration_fractions
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import adult_head, neonatal_head


def run_head(stack, seed):
    config = SimulationConfig(
        stack=stack,
        source=PencilBeam(),
        roulette=RouletteConfig(threshold=3e-2, boost=20),
        max_steps=60_000,
        records=RecordConfig(penetration_bins=(40.0, 400)),
    )
    return Simulation(config).run(scaled(8_000), seed=seed)


def test_ablation_adult_vs_neonate(benchmark, report):
    adult_stack = adult_head()
    neonate_stack = neonatal_head()
    adult = benchmark.pedantic(lambda: run_head(adult_stack, 61), rounds=1, iterations=1)
    neonate = run_head(neonate_stack, 62)

    pen_adult = penetration_fractions(adult, adult_stack)
    pen_neonate = penetration_fractions(neonate, neonate_stack)

    report("\n=== Ablation: adult vs neonatal head (superficial thickness) ===")
    superficial_adult = sum(adult_stack[i].thickness for i in range(3))
    superficial_neonate = sum(neonate_stack[i].thickness for i in range(3))
    report(f"superficial thickness (scalp+skull+CSF): adult "
           f"{superficial_adult:.1f} mm, neonate {superficial_neonate:.1f} mm\n")
    rows = [
        [layer.name,
         pen_adult[layer.name]["reached"],
         pen_neonate[layer.name]["reached"]]
        for layer in adult_stack
    ]
    report(format_table(
        ["layer", "reached (adult)", "reached (neonate)"],
        rows, float_format="{:.4f}",
    ))
    grey_gain = (
        pen_neonate["grey_matter"]["reached"] / pen_adult["grey_matter"]["reached"]
    )
    report(f"\nneonate grey-matter reach is {grey_gain:.1f}x the adult's")

    # --- the superficial-thickness effect ----------------------------------------
    assert pen_neonate["grey_matter"]["reached"] > 2.0 * pen_adult["grey_matter"]["reached"]
    assert pen_neonate["white_matter"]["reached"] > pen_adult["white_matter"]["reached"]
    # Both models still stop the majority of photons superficially.
    for pen in (pen_adult, pen_neonate):
        assert pen["scalp"]["stopped"] + pen["skull"]["stopped"] > 0.5
    # Energy conserved in both.
    assert adult.energy_balance == pytest.approx(1.0, abs=1e-9)
    assert neonate.energy_balance == pytest.approx(1.0, abs=1e-9)
