"""Table 2 — the 150-client heterogeneous non-dedicated cluster.

Regenerates the census table and the paper's production-run timing: "In
each simulation the paths taken by 1 billion photons were recorded, with
each simulation taking approximately 2 hours on the distributed system
detailed in Table 2."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    TABLE2_CLASSES,
    UniformAvailability,
    simulate_run,
    table2_cluster,
    total_mflops,
)
from repro.io import format_table

N_PHOTONS = 1_000_000_000
TASK_SIZE = 200_000


def run_table2():
    cluster = table2_cluster(np.random.default_rng(0))
    rep = simulate_run(
        cluster, N_PHOTONS, TASK_SIZE,
        availability=UniformAvailability(0.7, 1.0), seed=1,
    )
    return cluster, rep


def test_table2_heterogeneous(benchmark, report):
    cluster, rep = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    report("\n=== Table 2: distributed system resources ===")
    report(format_table(
        ["#", "Mflop/s", "RAM (MB)", "O/S", "Processor"],
        [[c.count, f"{c.mflops_min:g}-{c.mflops_max:g}", c.ram_mb, c.os, c.processor]
         for c in TABLE2_CLASSES],
    ))
    hours = rep.makespan_seconds / 3600
    report(f"\n{len(cluster)} clients, {total_mflops(cluster):.0f} Mflop/s aggregate")
    report(f"simulated 10^9-photon run: {hours:.2f} h makespan, "
           f"{rep.mean_utilisation:.1%} mean utilisation "
           f"(paper: 'approximately 2 hours')")

    # Per-class utilisation: the fast P4s do most of the work.
    by_machine = rep.per_machine
    p3_ids = [m.machine_id for m in cluster[:91]]
    p4_ids = [m.machine_id for m in cluster[91:141]]
    p3_photons = sum(by_machine[i].photons for i in p3_ids) / 91
    p4_photons = sum(by_machine[i].photons for i in p4_ids) / 50
    report(f"photons per P4 2.4GHz client : {p4_photons:,.0f}")
    report(f"photons per P3 600MHz client : {p3_photons:,.0f}")

    # --- assertions ----------------------------------------------------------
    assert len(cluster) == 150
    assert sum(c.count for c in TABLE2_CLASSES) == 150
    # "approximately 2 hours": within +-30%.
    assert 1.4 <= hours <= 2.6
    # Self-scheduling matches work to speed: P4s process ~5-9x more than P3s.
    assert 4.0 < p4_photons / p3_photons < 10.0
    # Every photon is accounted for.
    assert sum(s.photons for s in by_machine.values()) == N_PHOTONS
