"""Service path — caching/coalescing wins, overload backpressure, recovery.

The serving subsystem claims that a repeated request costs a disk read
instead of a simulation, that N concurrent identical requests cost *one*
simulation instead of N (PR-5), and — since the crash-safety work — that
sustained over-capacity load is answered with explicit 429/503
backpressure (never a hang or an unbounded queue) and that a manager
killed mid-run recovers from its journal, resuming from checkpoints.
Each scenario measures its latencies, prints the comparison, and merges
its numbers into ``BENCH_service.json`` for CI to archive.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from conftest import scaled

from repro import api
from repro.api import RunRequest
from repro.core import SimulationConfig
from repro.io import format_table
from repro.service import (
    AdmissionController,
    JobJournal,
    JobManager,
    ResultStore,
    ServiceServer,
    request_fingerprint,
)
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
CONFIG = SimulationConfig(stack=LayerStack.homogeneous(PROPS), source=PencilBeam())

N_RIDERS = 8

BENCH_PATH = Path("BENCH_service.json")


def merge_bench(update: dict) -> None:
    """Fold one scenario's numbers into BENCH_service.json (last run wins)."""
    try:
        payload = json.loads(BENCH_PATH.read_text())
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.update(update)
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


def make_request(photons: int) -> RunRequest:
    return RunRequest(config=CONFIG, n_photons=photons, seed=3, task_size=photons)


def run_service_paths(photons: int, root: Path):
    calls = []

    def counting_runner(request):
        calls.append(request)
        return api.run(request).tally

    store = ResultStore(root / "store")
    manager = JobManager(store, max_workers=2, runner=counting_runner)
    try:
        request = make_request(photons)

        t0 = time.perf_counter()
        cold_tally = manager.submit(request).result(timeout=600)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        job = manager.submit(request)
        cached_tally = job.result(timeout=600)
        cached = time.perf_counter() - t0
        assert job.cache_hit
        assert cached_tally == cold_tally  # bit-identical, no re-simulation

        # Coalescing: empty the store so the request must simulate again,
        # then race N identical submissions.
        store.clear()
        sims_before = len(calls)
        barrier = threading.Barrier(N_RIDERS)
        jobs = [None] * N_RIDERS

        def submit(i):
            barrier.wait()
            jobs[i] = manager.submit(request)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(N_RIDERS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        results = []
        for t in threads:
            t.join()
        for job in jobs:
            results.append(job.result(timeout=600))
        coalesced = time.perf_counter() - t0

        sims = len(calls) - sims_before
        assert sims == 1, f"{N_RIDERS} identical submissions ran {sims} simulations"
        assert all(r == cold_tally for r in results)
        return cold, cached, coalesced, sims
    finally:
        manager.close()


def test_service_latency(benchmark, report, tmp_path):
    photons = scaled(4000)

    cold, cached, coalesced, sims = benchmark.pedantic(
        run_service_paths, args=(photons, tmp_path), rounds=1, iterations=1
    )

    report("\n=== Service: cold vs cached vs coalesced ===")
    report(format_table(
        ["path", "latency (ms)", "simulations"],
        [
            ["cold (miss, simulate)", cold * 1e3, 1],
            ["cached (store hit)", cached * 1e3, 0],
            [f"coalesced ({N_RIDERS} riders)", coalesced * 1e3, sims],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\ncache speedup: {cold / cached:.1f}x; "
        f"{N_RIDERS} riders share one simulation "
        f"({coalesced / cold:.2f}x the cold latency)"
    )

    merge_bench({
        "photons": photons,
        "n_riders": N_RIDERS,
        "cold_seconds": cold,
        "cached_seconds": cached,
        "coalesced_seconds": coalesced,
        "coalesced_simulations": sims,
    })

    # --- the two claimed wins ----------------------------------------------
    assert cached < cold  # a store hit never re-simulates
    # N riders cost ~one simulation, not N: far below the serial worst case.
    assert coalesced < cold * (N_RIDERS / 2)


# --------------------------------------------------------------------------
# Overload: sustained over-capacity offered load → explicit 429/503, no hang
# --------------------------------------------------------------------------

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 15
HOLD_SECONDS = 0.15  # how long each admitted flight occupies a worker


def run_overload(root: Path):
    canned = api.run(make_request(1000)).tally

    def slow_runner(request):
        time.sleep(HOLD_SECONDS)
        return canned

    manager = JobManager(
        ResultStore(root / "store"), max_workers=2, runner=slow_runner
    )
    admission = AdmissionController(
        max_queue=6,
        rate_photons_per_s=20_000,
        burst_photons=20_000,  # two requests of burst per client
        max_inflight_per_client=4,
    )
    statuses: list[int] = []
    lock = threading.Lock()

    with ServiceServer(manager, admission=admission) as server:
        url = f"{server.url}/v2/runs"

        def client(name: str, base_seed: int) -> None:
            for i in range(REQUESTS_PER_CLIENT):
                body = json.dumps({
                    "model": "white_matter",
                    "n_photons": 10_000,
                    "seed": base_seed + i,
                    "task_size": 10_000,
                }).encode()
                req = urllib.request.Request(
                    url, data=body, method="POST",
                    headers={"Content-Type": "application/json", "X-Client": name},
                )
                try:
                    with urllib.request.urlopen(req, timeout=30) as resp:
                        code = resp.status
                        resp.read()
                except urllib.error.HTTPError as err:
                    code = err.code
                    err.read()
                with lock:
                    statuses.append(code)

        threads = [
            threading.Thread(target=client, args=(f"client-{i}", 1000 * i))
            for i in range(N_CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        depth = manager.queue_depth()
    return statuses, elapsed, depth


def test_service_overload(report, tmp_path):
    statuses, elapsed, depth = run_overload(tmp_path)

    total = len(statuses)
    counts = {code: statuses.count(code) for code in sorted(set(statuses))}
    admitted = counts.get(202, 0) + counts.get(200, 0)
    throttled = counts.get(429, 0)
    saturated = counts.get(503, 0)

    report("\n=== Service: sustained over-capacity load ===")
    report(format_table(
        ["outcome", "status", "count"],
        [
            ["admitted", "202/200", admitted],
            ["throttled (rate/quota)", 429, throttled],
            ["saturated (queue full)", 503, saturated],
        ],
    ))
    report(
        f"\n{total} requests from {N_CLIENTS} clients answered in "
        f"{elapsed:.2f}s ({total / elapsed:.0f} req/s); "
        f"queue depth bounded at <= 6 (now {depth})"
    )

    merge_bench({"overload": {
        "requests": total,
        "clients": N_CLIENTS,
        "status_counts": {str(k): v for k, v in counts.items()},
        "elapsed_seconds": elapsed,
    }})

    # Every request is answered (no hang), overload is *refused* loudly,
    # and the service still admits work (it degrades, it doesn't die).
    assert total == N_CLIENTS * REQUESTS_PER_CLIENT
    assert throttled + saturated > 0, "over-capacity load produced no backpressure"
    assert admitted > 0
    assert set(counts) <= {200, 202, 429, 503}


# --------------------------------------------------------------------------
# Recovery: kill a journaled manager mid-run, restart, resume from checkpoint
# --------------------------------------------------------------------------

RECOVERY_REQUEST = RunRequest(
    model="white_matter", n_photons=200, seed=21, task_size=50
)  # 4 tasks; the "crash" lands after 2 are durably checkpointed


class _DyingRunner:
    """Completes tasks until ``crash_at``, then blocks (the process 'dies')."""

    def __init__(self, crash_at: int) -> None:
        self.crash_at = crash_at
        self.reached = threading.Event()
        self.released = threading.Event()

    def _task_runner(self, config, task, **kwargs):
        from repro.distributed import WorkerCrash, execute_task

        if task.task_index >= self.crash_at:
            self.reached.set()
            self.released.wait(120)
            raise WorkerCrash("simulated process death (bench)")
        return execute_task(config, task, **kwargs)

    def __call__(self, request: RunRequest):
        from repro.distributed import DataManager, SerialBackend

        manager = DataManager(
            api.build_config(request),
            request.n_photons,
            seed=request.seed,
            task_size=request.resolved_task_size(),
            checkpoint=request.checkpoint,
            task_runner=self._task_runner,
            max_retries=1,
        )
        return manager.run(SerialBackend()).tally


def run_recovery(root: Path):
    t0 = time.perf_counter()
    reference = api.run(RECOVERY_REQUEST).tally
    uninterrupted = time.perf_counter() - t0

    dying = _DyingRunner(crash_at=2)
    manager1 = JobManager(
        ResultStore(root / "store"), journal=JobJournal(root / "journal"),
        runner=dying,
    )
    job = manager1.submit(RECOVERY_REQUEST)
    assert dying.reached.wait(120)

    t0 = time.perf_counter()
    manager2 = JobManager(
        ResultStore(root / "store"), journal=JobJournal(root / "journal")
    )
    try:
        recovered_job = manager2.job(job.id)
        tally = recovered_job.result(timeout=600)
        recovery = time.perf_counter() - t0
        bit_identical = tally == reference
    finally:
        dying.released.set()
        manager1.close()
        manager2.close()
    return uninterrupted, recovery, bit_identical


def test_service_recovery(report, tmp_path):
    uninterrupted, recovery, bit_identical = run_recovery(tmp_path)

    report("\n=== Service: crash mid-run, journal replay, checkpoint resume ===")
    report(format_table(
        ["scenario", "seconds"],
        [
            ["uninterrupted run", uninterrupted],
            ["restart + resume (2 of 4 tasks checkpointed)", recovery],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\nrecovered bit-identical: {bit_identical}; "
        f"resume cost {recovery / uninterrupted:.2f}x the uninterrupted run"
    )

    merge_bench({"recovery": {
        "photons": RECOVERY_REQUEST.n_photons,
        "uninterrupted_seconds": uninterrupted,
        "recovery_seconds": recovery,
        "bit_identical": bit_identical,
    }})

    assert bit_identical  # the acceptance bar: resume == uninterrupted
    # Half the work was checkpointed; resume must beat a full re-run.
    assert recovery < uninterrupted


# --------------------------------------------------------------------------
# Prefix extension: a cached smaller budget pays only for the delta photons
# --------------------------------------------------------------------------


def run_prefix_extension(photons: int, root: Path):
    task_size = photons // 8

    def request_for(budget: int) -> RunRequest:
        return RunRequest(config=CONFIG, n_photons=budget, seed=3, task_size=task_size)

    with JobManager(ResultStore(root / "ext-store"), max_workers=2) as manager:
        t0 = time.perf_counter()
        manager.submit(request_for(photons // 4)).result(timeout=600)
        base = time.perf_counter() - t0

        t0 = time.perf_counter()
        half_job = manager.submit(request_for(photons // 2))
        half_job.result(timeout=600)
        quarter_delta = time.perf_counter() - t0
        assert half_job.cache == "prefix"
        assert half_job.delta_photons == photons // 4

        t0 = time.perf_counter()
        full_job = manager.submit(request_for(photons))
        extended = full_job.result(timeout=600)
        half_delta = time.perf_counter() - t0
        assert full_job.cache == "prefix"
        assert full_job.delta_photons == photons // 2

    with JobManager(ResultStore(root / "cold-store"), max_workers=2) as manager:
        t0 = time.perf_counter()
        cold_tally = manager.submit(request_for(photons)).result(timeout=600)
        cold = time.perf_counter() - t0

    assert extended == cold_tally  # bit-identical to the from-scratch run
    return base, quarter_delta, half_delta, cold


def test_service_prefix_extension(report, tmp_path):
    photons = scaled(16_000)

    base, quarter_delta, half_delta, cold = run_prefix_extension(photons, tmp_path)

    report("\n=== Service: prefix extension pays only for the delta ===")
    report(format_table(
        ["request", "simulated photons", "latency (ms)"],
        [
            [f"cold base ({photons // 4})", photons // 4, base * 1e3],
            [f"extend to {photons // 2}", photons // 4, quarter_delta * 1e3],
            [f"extend to {photons}", photons // 2, half_delta * 1e3],
            [f"cold full ({photons})", photons, cold * 1e3],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\nextension to {photons} cost {half_delta / cold:.2f}x the cold full "
        f"run (delta is half the budget); bit-identical result"
    )

    merge_bench({"prefix_extension": {
        "photons": photons,
        "base_seconds": base,
        "quarter_delta_seconds": quarter_delta,
        "half_delta_seconds": half_delta,
        "cold_full_seconds": cold,
    }})

    # The claimed win: extension cost tracks the *delta*, not the budget —
    # both extensions must beat re-simulating the full budget from scratch.
    assert quarter_delta < cold
    assert half_delta < cold
