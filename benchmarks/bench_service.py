"""Service path — cold simulation vs cached result vs coalesced riders.

The serving subsystem (PR-5) claims that a repeated request costs a disk
read instead of a simulation, and that N concurrent identical requests
cost *one* simulation instead of N.  This bench measures the three
latencies on the same request, prints the comparison, and writes the
numbers to ``BENCH_service.json`` for CI to archive.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from conftest import scaled

from repro import api
from repro.api import RunRequest
from repro.core import SimulationConfig
from repro.io import format_table
from repro.service import JobManager, ResultStore
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
CONFIG = SimulationConfig(stack=LayerStack.homogeneous(PROPS), source=PencilBeam())

N_RIDERS = 8


def make_request(photons: int) -> RunRequest:
    return RunRequest(config=CONFIG, n_photons=photons, seed=3, task_size=photons)


def run_service_paths(photons: int, root: Path):
    calls = []

    def counting_runner(request):
        calls.append(request)
        return api.run(request).tally

    store = ResultStore(root / "store")
    manager = JobManager(store, max_workers=2, runner=counting_runner)
    try:
        request = make_request(photons)

        t0 = time.perf_counter()
        cold_tally = manager.submit(request).result(timeout=600)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        job = manager.submit(request)
        cached_tally = job.result(timeout=600)
        cached = time.perf_counter() - t0
        assert job.cache_hit
        assert cached_tally == cold_tally  # bit-identical, no re-simulation

        # Coalescing: empty the store so the request must simulate again,
        # then race N identical submissions.
        store.clear()
        sims_before = len(calls)
        barrier = threading.Barrier(N_RIDERS)
        jobs = [None] * N_RIDERS

        def submit(i):
            barrier.wait()
            jobs[i] = manager.submit(request)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(N_RIDERS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        results = []
        for t in threads:
            t.join()
        for job in jobs:
            results.append(job.result(timeout=600))
        coalesced = time.perf_counter() - t0

        sims = len(calls) - sims_before
        assert sims == 1, f"{N_RIDERS} identical submissions ran {sims} simulations"
        assert all(r == cold_tally for r in results)
        return cold, cached, coalesced, sims
    finally:
        manager.close()


def test_service_latency(benchmark, report, tmp_path):
    photons = scaled(4000)

    cold, cached, coalesced, sims = benchmark.pedantic(
        run_service_paths, args=(photons, tmp_path), rounds=1, iterations=1
    )

    report("\n=== Service: cold vs cached vs coalesced ===")
    report(format_table(
        ["path", "latency (ms)", "simulations"],
        [
            ["cold (miss, simulate)", cold * 1e3, 1],
            ["cached (store hit)", cached * 1e3, 0],
            [f"coalesced ({N_RIDERS} riders)", coalesced * 1e3, sims],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\ncache speedup: {cold / cached:.1f}x; "
        f"{N_RIDERS} riders share one simulation "
        f"({coalesced / cold:.2f}x the cold latency)"
    )

    Path("BENCH_service.json").write_text(json.dumps({
        "photons": photons,
        "n_riders": N_RIDERS,
        "cold_seconds": cold,
        "cached_seconds": cached,
        "coalesced_seconds": coalesced,
        "coalesced_simulations": sims,
    }, indent=2))

    # --- the two claimed wins ----------------------------------------------
    assert cached < cold  # a store hit never re-simulates
    # N riders cost ~one simulation, not N: far below the serial worst case.
    assert coalesced < cold * (N_RIDERS / 2)
