"""Fig. 2 — speedup vs number of homogeneous processors.

Regenerates the paper's speedup graph on the simulated cluster: 1-60
identical non-dedicated Pentium-IV class machines (the paper's testbed) and
pull-based self-scheduling.  Asserts the headline result — near-linear
speedup with **over 97% efficiency at 60 processors** — and the curve's
monotone shape.
"""

from __future__ import annotations

import pytest

from repro.cluster import speedup_curve
from repro.io import format_table

KS = [1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60]
N_PHOTONS = 100_000_000
TASK_SIZE = 100_000


def run_curve():
    return speedup_curve(KS, N_PHOTONS, TASK_SIZE)


def test_fig2_speedup(benchmark, report):
    points = benchmark.pedantic(run_curve, rounds=1, iterations=1)

    report("\n=== Fig. 2: speedup with varying numbers of homogeneous processors ===")
    report(format_table(
        ["k", "Pk (s)", "speedup", "efficiency"],
        [[p.k, p.pk_seconds, p.speedup, p.efficiency] for p in points],
        float_format="{:.4g}",
    ))
    by_k = {p.k: p for p in points}
    report(f"\nefficiency at 60 processors: {by_k[60].efficiency:.1%} "
           f"(paper: 'over 97% efficiency at 60 processors')")

    # --- shape assertions ----------------------------------------------------
    assert by_k[1].speedup == pytest.approx(1.0)
    # Near-linear: speedup monotone increasing in k.
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    # The headline claim.
    assert by_k[60].efficiency >= 0.97
    # Every point stays close to linear (no early saturation).
    assert all(p.efficiency >= 0.9 for p in points)
