"""Validation bench — pathlength gating and the TPSF vs diffusion theory.

The paper's gated mode slices the temporal point-spread function: "the
source and detector only operate between pulses.  Thus the ability to gate
the pathlengths allows for the simulation of this."  This bench records a
full TPSF with the Monte Carlo engine and checks it against the Patterson
time-resolved diffusion solution, then demonstrates that gating selects
deeper photons (the mechanism time-gated NIRS exploits).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import scaled

from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import AnnularDetector, PathlengthGate, tpsf, tpsf_moments
from repro.diffusion import reflectance_time_resolved
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

#: Diffusive medium, index-matched so the theory has no A-factor ambiguity.
PROPS = OpticalProperties(mu_a=0.05, mu_s=20.0, g=0.9, n=1.0)
RHO = 5.0


def run_tpsf():
    config = SimulationConfig(
        stack=LayerStack.homogeneous(PROPS),
        source=PencilBeam(),
        detector=AnnularDetector(RHO - 0.5, RHO + 0.5),
        roulette=RouletteConfig(threshold=1e-3, boost=10),
        records=RecordConfig(pathlength_bins=(0.0, 240.0, 48)),
    )
    return Simulation(config).run(scaled(80_000), seed=41)


def test_gated_tpsf(benchmark, report):
    tally = benchmark.pedantic(run_tpsf, rounds=1, iterations=1)

    t, intensity = tpsf(tally)
    moments = tpsf_moments(tally)
    report(f"\n=== Gated operation: TPSF at rho = {RHO} mm ===")
    report(f"({tally.detected_count} photons detected; "
           f"mean arrival {moments['mean_ns']*1000:.0f} ps)")

    # Theory curve, normalised to match the MC integral over the window.
    theory = reflectance_time_resolved(RHO, t, PROPS)
    mask = intensity > 0
    scale = intensity[mask].sum() / max(theory[mask].sum(), 1e-300)
    rows = []
    for i in range(0, len(t), 6):
        if intensity[i] > 0:
            rows.append([t[i] * 1000, intensity[i], theory[i] * scale])
    report(format_table(
        ["t (ps)", "MC TPSF", "diffusion theory (scaled)"],
        rows, float_format="{:.3g}",
    ))

    # --- TPSF shape vs theory ---------------------------------------------------
    peak_mc = t[np.argmax(intensity)]
    peak_theory = t[np.argmax(theory)]
    assert peak_mc == pytest.approx(peak_theory, abs=0.02)
    # Late-time decay rate ~ mu_a * c (the absorption clock).
    late = (t > peak_mc * 3) & (intensity > 0)
    if late.sum() >= 4:
        c = PROPS.phase_velocity
        rate = -np.polyfit(t[late], np.log(intensity[late] * t[late] ** 2.5), 1)[0]
        assert rate == pytest.approx(PROPS.mu_a * c, rel=0.35)

    # --- gating selects deeper photons -------------------------------------------
    gates = [
        ("early (0-25 mm)", PathlengthGate(0.0, 25.0)),
        ("middle (25-60 mm)", PathlengthGate(25.0, 60.0)),
        ("late (>60 mm)", PathlengthGate(60.0, 1e9)),
    ]
    depth_rows = []
    depths = []
    for label, gate in gates:
        config = SimulationConfig(
            stack=LayerStack.homogeneous(PROPS),
            source=PencilBeam(),
            detector=AnnularDetector(RHO - 0.5, RHO + 0.5),
            gate=gate,
            roulette=RouletteConfig(threshold=1e-3, boost=10),
        )
        gated = Simulation(config).run(scaled(30_000), seed=43)
        depth_rows.append([label, gated.detected_count, gated.penetration_depth.mean])
        depths.append(gated.penetration_depth.mean)
    report("\ngate window vs mean maximum penetration depth:")
    report(format_table(
        ["gate", "detected", "mean max depth (mm)"], depth_rows,
        float_format="{:.2f}",
    ))
    assert depths[0] < depths[1] < depths[2]
