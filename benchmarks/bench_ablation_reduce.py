"""Ablation — hold-all-then-merge vs incremental pairwise reduction.

The PR-3 reducer claims two wins over the old end-of-run ``merge_all``:
bounded memory (≤ ~⌈log₂ n⌉ pending tallies instead of all n) and no
end-of-run merge stall (merging is amortised across task arrivals).  This
bench measures both on a grid-recording workload where per-task tallies
are megabyte-scale, prints the comparison, and writes the numbers to
``BENCH_reduce.json`` for CI to archive.
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from pathlib import Path

from conftest import scaled

from repro.core import (
    PairwiseReducer,
    RecordConfig,
    SimulationConfig,
    reduce_all,
    run_photons,
    task_rng,
)
from repro.detect import GridSpec
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

PROPS = OpticalProperties(mu_a=1.0, mu_s=10.0, g=0.8, n=1.4)
#: Dense recording grid so each per-task tally is ~1.7 MB — the regime the
#: paper's long-running campaigns live in, where holding every task tally
#: until the end is what actually exhausts a worker-station's memory.
CONFIG = SimulationConfig(
    stack=LayerStack.homogeneous(PROPS),
    source=PencilBeam(),
    records=RecordConfig(
        absorption_grid=GridSpec(shape=(48, 48, 48), lo=(-5, -5, 0), hi=(5, 5, 10)),
        pathlength_bins=(0.0, 100.0, 64),
    ),
)

N_TASKS = 64


def leaf(i: int, photons: int):
    return run_photons(CONFIG, photons, task_rng(11, i))


def run_hold_all(photons: int):
    """Old pipeline: keep every task tally, one big merge at the end."""
    tracemalloc.reset_peak()
    tallies = [leaf(i, photons) for i in range(N_TASKS)]
    t0 = time.perf_counter()
    merged = reduce_all(tallies, owned=True)
    stall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    return merged, stall, peak


def run_incremental(photons: int):
    """New pipeline: fold each tally into the pairwise tree as it arrives."""
    tracemalloc.reset_peak()
    reducer = PairwiseReducer(N_TASKS)
    for i in range(N_TASKS):
        reducer.add(i, leaf(i, photons), owned=True)
    t0 = time.perf_counter()
    merged = reducer.result()
    stall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    return merged, stall, peak, reducer.pending_peak


def test_ablation_reduce(benchmark, report):
    photons = max(5, scaled(4000) // N_TASKS)

    def run_both():
        tracemalloc.start()
        try:
            hold = run_hold_all(photons)
            inc = run_incremental(photons)
        finally:
            tracemalloc.stop()
        return hold, inc

    (hold_tally, hold_stall, hold_peak), (
        inc_tally, inc_stall, inc_peak, pending_peak
    ) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report("\n=== Ablation: hold-all-then-merge vs incremental reduction ===")
    report(format_table(
        ["pipeline", "peak traced MB", "end-of-run stall (ms)"],
        [
            ["hold all, merge at end", hold_peak / 2**20, hold_stall * 1e3],
            ["incremental pairwise", inc_peak / 2**20, inc_stall * 1e3],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\npending peak: {pending_peak} tallies "
        f"(bound: ceil(log2({N_TASKS})) = {math.ceil(math.log2(N_TASKS))})"
    )

    Path("BENCH_reduce.json").write_text(json.dumps({
        "n_tasks": N_TASKS,
        "photons_per_task": photons,
        "hold_all": {"peak_bytes": hold_peak, "stall_seconds": hold_stall},
        "incremental": {"peak_bytes": inc_peak, "stall_seconds": inc_stall,
                        "pending_peak": pending_peak},
    }, indent=2))

    # --- correctness and the two claimed wins -------------------------------
    assert inc_tally == hold_tally  # bit-identical to the old pipeline
    assert pending_peak <= math.ceil(math.log2(N_TASKS))
    assert inc_peak < hold_peak / 2  # bounded memory, with headroom
    assert inc_stall < hold_stall  # the end-of-run merge stall is gone
