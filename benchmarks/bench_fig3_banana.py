"""Fig. 3 — banana-shaped detected paths in homogeneous white matter.

"To verify the accuracy of the application, we mapped the paths of [...]
photons through a homogeneous tissue (white matter).  Only photon paths
which reach the detector were counted.  Fig. 3 shows the most common paths
taken by the photons, after thresholding.  The most common paths form a
banana shape, as expected."  Granularity 50³, laser (delta) source.

Scaled for a laptop: the optode spacing is a few mm (white matter's
µs' = 9.1 mm⁻¹ makes 20+ mm spacings need billions of photons — the reason
the paper built a cluster), and the photon budget is REPRO_BENCH_SCALE
x 30 000.
"""

from __future__ import annotations

from conftest import scaled

from repro.analysis import (
    ascii_heatmap,
    banana_metrics,
    threshold_top_weight,
    xz_slice,
)
from repro.core import RecordConfig, RouletteConfig, Simulation, SimulationConfig
from repro.detect import DiscDetector, GridSpec
from repro.sources import PencilBeam
from repro.tissue import white_matter

SPACING = 4.0  # mm
GRANULARITY = 50  # the paper's "granularity of 50^3"


def run_banana():
    spec = GridSpec.banana_box(GRANULARITY, SPACING)
    config = SimulationConfig(
        stack=white_matter(),
        source=PencilBeam(),
        detector=DiscDetector(SPACING, 0.0, radius=1.25),
        roulette=RouletteConfig(threshold=1e-2, boost=10),
        records=RecordConfig(path_grid=spec),
    )
    tally = Simulation(config).run(scaled(50_000), seed=7)
    return tally, spec


def test_fig3_banana(benchmark, report):
    tally, spec = benchmark.pedantic(run_banana, rounds=1, iterations=1)

    slab = xz_slice(tally.path_grid, spec)
    thresholded = slab * threshold_top_weight(slab, 0.75)
    report("\n=== Fig. 3: laser source, granularity 50^3, homogeneous white matter ===")
    report(f"(detector at {SPACING} mm; {tally.detected_count} of "
           f"{tally.n_launched:,} photons detected)\n")
    report("detected-path density after thresholding "
           "(source left, detector right, depth downward):")
    report(ascii_heatmap(thresholded, width=60, height=24))

    m = banana_metrics(tally.path_grid, spec, detector_x=SPACING)
    report(f"\ndepth under source   : {m.depth_at_source:.2f} mm")
    report(f"depth at midpoint    : {m.depth_at_midpoint:.2f} mm")
    report(f"depth under detector : {m.depth_at_detector:.2f} mm")
    report(f"deepest at x         : {m.argmax_depth_x:.2f} mm")
    report(f"banana shape         : {m.is_banana}")

    # --- assertions: "the most common paths form a banana shape" -------------
    assert tally.detected_count > 40
    assert m.is_banana
    # The deepest point lies strictly between the optodes.
    assert 0.0 < m.argmax_depth_x < SPACING
    # Midpoint depth scales with the optode spacing (the banana dips to
    # roughly a third to two thirds of rho at these optical properties).
    assert 0.2 * SPACING < m.depth_at_midpoint < SPACING
    # Ends taper to the surface: endpoint bands are dominated by shallow voxels.
    assert m.depth_at_source < m.depth_at_midpoint
    assert m.depth_at_detector < m.depth_at_midpoint
