"""Ablation — voxelised vs analytic layered representation.

The paper (§2): the Monte Carlo method "can be applied to an inhomogeneous
medium of complex geometry".  This bench checks the voxel kernel against
the analytic layered kernel on the same physics, measures the voxelisation
overhead, and demonstrates a genuinely heterogeneous case (an absorbing
inclusion) that the layered representation cannot express.
"""

from __future__ import annotations

import time

import pytest
from conftest import scaled

from repro.core import (
    RouletteConfig,
    SimulationConfig,
    run_batch_vectorized,
    task_rng,
)
from repro.io import format_table
from repro.sources import PencilBeam
from repro.tissue import Layer, LayerStack, OpticalProperties
from repro.voxel import VoxelConfig, from_layers, run_voxel, with_sphere

ROULETTE = RouletteConfig(threshold=1e-3, boost=10)
STACK = LayerStack(
    [
        Layer("superficial", OpticalProperties(mu_a=0.5, mu_s=8.0, g=0.8, n=1.4), 2.0),
        Layer("deep", OpticalProperties(mu_a=1.0, mu_s=12.0, g=0.9, n=1.4), 4.0),
    ]
)


def run_pair():
    n = scaled(25_000)

    layered_config = SimulationConfig(
        stack=STACK, source=PencilBeam(), roulette=ROULETTE
    )
    t0 = time.perf_counter()
    layered = run_batch_vectorized(layered_config, n, task_rng(51, 0))
    t_layered = time.perf_counter() - t0

    medium = from_layers(STACK, (40, 40, 30), half_extent=20.0)
    voxel_config = VoxelConfig(medium=medium, source=PencilBeam(), roulette=ROULETTE)
    t0 = time.perf_counter()
    voxel = run_voxel(voxel_config, n, seed=52)
    t_voxel = time.perf_counter() - t0

    # The heterogeneous case: an absorbing sphere in the deep layer.
    inclusion = OpticalProperties(mu_a=10.0, mu_s=12.0, g=0.9, n=1.4)
    hetero = with_sphere(medium, (0.0, 0.0, 3.0), 1.2, inclusion)
    hetero_tally = run_voxel(
        VoxelConfig(medium=hetero, source=PencilBeam(), roulette=ROULETTE),
        n, seed=53,
    )
    return (layered, t_layered), (voxel, t_voxel), hetero_tally, n


def test_ablation_voxel_representation(benchmark, report):
    (layered, t_l), (voxel, t_v), hetero, n = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    report("\n=== Ablation: voxelised vs analytic layered representation ===")
    report(format_table(
        ["kernel", "photons/s", "R_d", "T_d", "A", "balance"],
        [
            ["layered (analytic)", n / t_l, layered.diffuse_reflectance,
             layered.transmittance, layered.total_absorbed_fraction,
             layered.energy_balance],
            ["voxel (40x40x30)", n / t_v, voxel.diffuse_reflectance,
             voxel.transmittance, voxel.total_absorbed_fraction,
             voxel.energy_balance],
        ],
        float_format="{:.4g}",
    ))
    report(f"\nvoxelisation cost: {t_v / t_l:.1f}x slower than analytic layers")

    report("\nwith an absorbing sphere (r=1.2 mm) in the deep layer:")
    report(format_table(
        ["material", "absorbed fraction"],
        [["superficial", hetero.absorbed_fraction[0]],
         ["deep", hetero.absorbed_fraction[1]],
         ["inclusion", hetero.absorbed_fraction[2]]],
        float_format="{:.4f}",
    ))

    # --- agreement on identical physics -----------------------------------------
    assert voxel.diffuse_reflectance == pytest.approx(
        layered.diffuse_reflectance, rel=0.06
    )
    assert voxel.total_absorbed_fraction == pytest.approx(
        layered.total_absorbed_fraction, rel=0.03
    )
    assert voxel.transmittance == pytest.approx(layered.transmittance, rel=0.25)
    assert voxel.energy_balance == pytest.approx(1.0, abs=1e-9)
    # --- the inclusion does real work --------------------------------------------
    volume_share = 4 / 3 * 3.14159 * 1.2**3 / (40.0 * 40.0 * 6.0)
    absorbed_share = hetero.absorbed_fraction[2] / hetero.total_absorbed_fraction
    assert absorbed_share > 10 * volume_share
