"""Perturbation MC — one captured run answers a μa sweep, cold runs don't.

The derivation graph's claim: a request differing from a cached captured
run only in optical coefficients is served by reweighting the parent's
path records, so an N-point absorption sweep costs one simulation plus N
cheap derivations instead of N simulations.  The scenario runs a 16-point
μa sweep both ways through the real ``JobManager`` and merges the
latencies into ``BENCH_perturb.json`` for CI to archive.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import scaled

from repro.api import RunRequest
from repro.core import SimulationConfig
from repro.io import format_table
from repro.service import JobManager, ResultStore
from repro.sources import PencilBeam
from repro.tissue import LayerStack, OpticalProperties

N_POINTS = 16
BASE_MU_A = 1.0

BENCH_PATH = Path("BENCH_perturb.json")


def merge_bench(update: dict) -> None:
    """Fold one scenario's numbers into BENCH_perturb.json (last run wins)."""
    try:
        payload = json.loads(BENCH_PATH.read_text())
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.update(update)
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


def make_request(mu_a: float, photons: int) -> RunRequest:
    props = OpticalProperties(mu_a=mu_a, mu_s=10.0, g=0.8, n=1.4)
    config = SimulationConfig(
        stack=LayerStack.homogeneous(props), source=PencilBeam()
    )
    return RunRequest(
        config=config, n_photons=photons, seed=3, task_size=photons // 8
    )


def sweep_points() -> list[float]:
    # ±25% around the parent's absorption, parent value excluded.
    return [
        BASE_MU_A * (0.75 + 0.5 * i / (N_POINTS - 1)) for i in range(N_POINTS)
    ]


def run_sweep(photons: int, root: Path):
    # Derivation path: one captured parent, then every sweep point derived.
    with JobManager(ResultStore(root / "derived-store"), max_workers=2) as manager:
        t0 = time.perf_counter()
        manager.submit(make_request(BASE_MU_A, photons)).result(timeout=600)
        parent = time.perf_counter() - t0

        t0 = time.perf_counter()
        jobs = [manager.submit(make_request(mu_a, photons)) for mu_a in sweep_points()]
        for job in jobs:
            job.result(timeout=600)
        derived_sweep = time.perf_counter() - t0
        derived_count = sum(job.cache == "derived" for job in jobs)
        assert derived_count == N_POINTS, (
            f"only {derived_count}/{N_POINTS} sweep points were derived"
        )

    # Cold path: the same sweep with path capture off — every point simulates.
    with JobManager(
        ResultStore(root / "cold-store"), max_workers=2, capture_paths=False
    ) as manager:
        t0 = time.perf_counter()
        jobs = [manager.submit(make_request(mu_a, photons)) for mu_a in sweep_points()]
        for job in jobs:
            job.result(timeout=600)
        cold_sweep = time.perf_counter() - t0
        assert all(job.cache == "miss" for job in jobs)

    return parent, derived_sweep, cold_sweep


def test_perturb_sweep(benchmark, report, tmp_path):
    photons = scaled(16_000)

    parent, derived_sweep, cold_sweep = benchmark.pedantic(
        run_sweep, args=(photons, tmp_path), rounds=1, iterations=1
    )

    speedup = cold_sweep / derived_sweep
    report(f"\n=== Perturbation MC: {N_POINTS}-point mu_a sweep ===")
    report(format_table(
        ["path", "simulations", "latency (ms)"],
        [
            [f"captured parent run ({photons} photons)", 1, parent * 1e3],
            [f"sweep by derivation ({N_POINTS} points)", 0, derived_sweep * 1e3],
            [f"sweep by cold runs ({N_POINTS} points)", N_POINTS, cold_sweep * 1e3],
        ],
        float_format="{:.3g}",
    ))
    report(
        f"\nderived sweep is {speedup:.1f}x faster than re-simulating; "
        f"even counting the parent run it costs "
        f"{(parent + derived_sweep) / cold_sweep:.2f}x the cold sweep"
    )

    merge_bench({
        "photons": photons,
        "sweep_points": N_POINTS,
        "parent_seconds": parent,
        "derived_sweep_seconds": derived_sweep,
        "cold_sweep_seconds": cold_sweep,
        "speedup": speedup,
    })

    # The claimed win: deriving the sweep beats simulating it by >= 10x.
    assert speedup >= 10.0, f"derivation speedup {speedup:.1f}x < 10x"
